"""Pluggable sweep executors: how scenario cells actually get run.

:class:`~repro.sim.sweep.ScenarioRunner` decides *what* to run (cache
misses, journal replay, fleet batching); a :class:`SweepExecutor`
decides *where and how*.  The interface is deliberately small:

* :meth:`SweepExecutor.attach` / :meth:`SweepExecutor.detach` bracket
  one sweep and hand the executor its :class:`ExecutionContext`
  (timeouts, checkpoint sidecars, retry policy, commit callback);
* :meth:`SweepExecutor.submit` runs one cell to a final outcome --
  a :data:`CellResult` or a contained :class:`CellFailure`;
* :meth:`SweepExecutor.run` maps ``submit`` over a batch (backends
  override it to fan out);
* :meth:`SweepExecutor.heartbeat` is a liveness/progress snapshot.

:class:`LocalProcessExecutor` reproduces the historic in-repo
behaviour byte-for-byte: serial in-process execution for one worker,
``ProcessPoolExecutor`` fan-out with killed-worker containment and
retry/backoff above that.  The distributed TCP backend lives in
:mod:`repro.sim.distributed`.

This module also owns the cell-execution primitives (single attempt,
sidecar checkpointing, per-cell timeout, failure capture) that every
backend shares -- a worker process on another host runs exactly the
same :func:`timed_cell` as the serial loop, which is what keeps remote
results byte-identical to local ones.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import threading
import time
import traceback as traceback_module
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Sequence, Tuple, Union)

from .. import obs
from ..durability.deadline import DeadlineExceededError, thread_deadline
from ..durability.snapshot import Checkpointer, SimCheckpoint
from ..durability.state import StateMismatchError
from .retry import DEFAULT_RETRY, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .daily import MultiDayResult
    from .discharge import DischargeResult
    from .sweep import ScenarioCell, SimStats

__all__ = [
    "CellFailure",
    "CellTimeoutError",
    "ExecutionContext",
    "ExecutorHeartbeat",
    "SweepExecutor",
    "LocalProcessExecutor",
    "timed_cell",
    "choose_timeout_mechanism",
]

#: Result type of a single scenario cell.
CellResult = Union["DischargeResult", "MultiDayResult"]


class CellTimeoutError(DeadlineExceededError):
    """A scenario cell exceeded the runner's per-cell timeout.

    Subclasses :class:`~repro.durability.deadline.DeadlineExceededError`
    so the SIGALRM path and the cooperative-deadline fallback raise the
    same family of exception -- callers filter on one type either way.
    """


@dataclass(frozen=True)
class CellFailure:
    """A scenario cell that could not produce a result.

    Stored in the result slot of its cell so the rest of the sweep
    stays intact; carries enough to debug the cell offline.
    """

    #: The failed cell's human-readable label.
    label: str
    #: Exception class name (or "BrokenProcessPool" for a dead worker).
    error_type: str
    #: Exception message.
    message: str
    #: Formatted traceback ("" when the worker died without one).
    traceback: str = ""
    #: Execution attempts consumed (1 = no retries needed/left).
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.label}: {self.error_type}: {self.message}"


#: What a result slot can hold once failures are contained per cell.
CellOutcome = Union[CellResult, CellFailure]

#: The per-cell work item every backend produces:
#: ``(index, outcome, compute seconds, control steps)``.
CellItem = Tuple[int, CellOutcome, float, int]


# ----------------------------------------------------------------------
# Shared cell-execution primitives
# ----------------------------------------------------------------------
def _run_cell_once(cell: "ScenarioCell",
                   checkpointer: Optional[Checkpointer],
                   resume_from: Optional[SimCheckpoint],
                   stall_timeout_s: Optional[float]) -> CellResult:
    """One attempt at a cell, optionally durable.

    The policy template and extra run arguments are cloned via a
    pickle round trip so serial execution sees exactly the fresh-copy
    semantics that process fan-out gets for free -- results are
    identical either way.
    """
    from .daily import run_days
    from .discharge import run_discharge_cycle

    policy, extra = pickle.loads(pickle.dumps((cell.policy, dict(cell.extra))))
    durable: Dict[str, Any] = {}
    if checkpointer is not None:
        durable["checkpointer"] = checkpointer
        durable["resume_from"] = resume_from
    if cell.kind == "daily":
        result: CellResult = run_days(
            policy, cell.trace, profile=cell.profile,
            control_dt=cell.control_dt, max_cycle_s=cell.max_duration_s,
            **durable, **extra,
        )
    else:
        if stall_timeout_s is not None:
            durable["stall_timeout_s"] = stall_timeout_s
        result = run_discharge_cycle(
            policy, cell.trace, profile=cell.profile,
            control_dt=cell.control_dt, max_duration_s=cell.max_duration_s,
            ambient_c=cell.ambient_c, record_every=cell.record_every,
            **durable, **extra,
        )
    return result


def _execute_cell(cell: "ScenarioCell",
                  ckpt_path: Optional[str] = None,
                  ckpt_every: int = 0,
                  stall_timeout_s: Optional[float] = None) -> CellResult:
    """Run one scenario cell (worker entry point; must be picklable).

    When ``ckpt_path`` is set (journalled sweeps), the cell writes
    periodic sidecar checkpoints there and, if a verified sidecar from
    an interrupted attempt exists, resumes from it instead of starting
    over.  A sidecar whose configuration fingerprint no longer matches
    (edited spec under an unchanged key salt) is discarded and the
    cell recomputes from scratch -- stale state is never trusted.
    """
    if ckpt_path is None:
        return _run_cell_once(cell, None, None, stall_timeout_s)
    checkpointer = Checkpointer(ckpt_path, every_steps=ckpt_every)
    resume_from = SimCheckpoint.try_load(ckpt_path)
    try:
        return _run_cell_once(cell, checkpointer, resume_from,
                              stall_timeout_s)
    except StateMismatchError:
        if resume_from is None:
            raise
        try:
            os.unlink(ckpt_path)
        except OSError:
            pass
        return _run_cell_once(cell, checkpointer, None, stall_timeout_s)


def choose_timeout_mechanism(timeout_s: Optional[float]) -> str:
    """Which per-cell timeout mechanism this thread would use.

    ``"none"`` when no budget is set, ``"sigalrm"`` for the hard
    SIGALRM interrupt (POSIX main thread -- where pool workers and the
    serial path run cells), ``"cooperative"`` for the per-thread
    deadline the simulation loops poll every control step.
    """
    if not timeout_s or timeout_s <= 0:
        return "none"
    try:
        import signal
        if (hasattr(signal, "setitimer")
                and threading.current_thread() is threading.main_thread()):
            return "sigalrm"
    except ImportError:  # pragma: no cover - signal is POSIX-universal
        pass
    return "cooperative"


def _execute_with_timeout(cell: "ScenarioCell",
                          timeout_s: Optional[float],
                          ckpt_path: Optional[str] = None,
                          ckpt_every: int = 0,
                          stall_timeout_s: Optional[float] = None) -> CellResult:
    """Run one cell under a wall-clock budget.

    SIGALRM delivers a hard timeout on the main thread of a POSIX
    process -- which is exactly where ProcessPoolExecutor workers (and
    the serial path) run cells.  Anywhere else (worker threads,
    platforms without ``setitimer``) the budget degrades -- with a
    warning -- to a cooperative per-thread deadline that the simulation
    loops poll every control step, raising the same
    :class:`CellTimeoutError`, instead of silently having no timeout
    at all.
    """
    mechanism = choose_timeout_mechanism(timeout_s)
    if mechanism == "none":
        return _execute_cell(cell, ckpt_path, ckpt_every, stall_timeout_s)
    message = f"cell exceeded the per-cell timeout of {timeout_s} s"
    if mechanism == "cooperative":
        warnings.warn(
            "SIGALRM is unavailable off the main thread / on this "
            "platform; the per-cell timeout falls back to a cooperative "
            "deadline polled by the simulation loop (best-effort)",
            RuntimeWarning, stacklevel=2)
        with thread_deadline(timeout_s, message, exc_type=CellTimeoutError):
            return _execute_cell(cell, ckpt_path, ckpt_every,
                                 stall_timeout_s)
    import signal

    def _on_alarm(signum, frame):
        raise CellTimeoutError(message)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return _execute_cell(cell, ckpt_path, ckpt_every, stall_timeout_s)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def timed_cell(
    cell: "ScenarioCell", timeout_s: Optional[float] = None,
    ckpt_path: Optional[str] = None, ckpt_every: int = 0,
    stall_timeout_s: Optional[float] = None,
    obs_enabled: bool = False,
) -> CellItem:
    """(index, outcome, compute seconds, steps) for one cell.

    The measured wall time is harvested into ``SimStats`` and the
    result's own ``wall_time_s`` is zeroed, keeping payloads (and hence
    cache entries and parallel-vs-serial comparisons) deterministic.
    An exception inside the cell (including a timeout) is captured as a
    :class:`CellFailure` instead of propagating -- one broken scenario
    must not abort the grid.

    ``obs_enabled`` propagates the parent's observability switch into
    pool workers: a worker with no session of its own configures a
    local null-exporter session so the cell's telemetry is harvested
    onto the result (which rides back over the existing result
    channel) and tears it down afterwards, keeping the pooled process
    clean for the next cell.
    """
    local_obs = False
    if obs_enabled and obs.session() is None:
        obs.configure(enabled=True)
        local_obs = True
    ob = obs.session()
    cell_span = (ob.tracer.start("cell", label=cell.label)
                 if ob is not None else None)
    started = time.perf_counter()
    try:
        try:
            result: CellOutcome = _execute_with_timeout(
                cell, timeout_s, ckpt_path, ckpt_every, stall_timeout_s)
        except Exception as exc:
            elapsed = time.perf_counter() - started
            failure = CellFailure(
                label=cell.label,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback_module.format_exc(),
            )
            return cell.index, failure, elapsed, 0
        elapsed = time.perf_counter() - started
        steps = int(getattr(result, "step_count", 0))
        if hasattr(result, "wall_time_s"):
            result.wall_time_s = 0.0
        return cell.index, result, elapsed, steps
    finally:
        if cell_span is not None:
            cell_span.finish()
        if local_obs:
            obs.disable()


# ----------------------------------------------------------------------
# Executor interface
# ----------------------------------------------------------------------
@dataclass
class ExecutionContext:
    """Everything a backend needs to run one sweep's pending cells.

    Built by :class:`~repro.sim.sweep.ScenarioRunner` and handed to
    :meth:`SweepExecutor.attach`; immutable for the duration of one
    sweep.
    """

    #: Per-cell wall-clock budget (None = unbounded).
    cell_timeout_s: Optional[float] = None
    #: index -> sidecar checkpoint path (journalled sweeps only).
    ckpts: Dict[int, str] = field(default_factory=dict)
    #: In-cell sidecar checkpoint cadence in control steps.
    checkpoint_every_steps: int = 0
    #: Heartbeat-stall watchdog for journalled discharge cells.
    stall_timeout_s: Optional[float] = None
    #: Retry/backoff schedule for infrastructure failures.
    retry: RetryPolicy = DEFAULT_RETRY
    #: Pool width hint (the runner's ``workers``).
    workers: int = 1
    #: Whether an observability session is active in the parent.
    obs_enabled: bool = False
    #: Durable-commit callback: called exactly once per cell index
    #: with its final outcome, as it lands (journal commits ride on
    #: this).
    on_final: Optional[Callable[[int, CellOutcome], None]] = None
    #: The sweep's stats object; backends add their retry/backoff
    #: accounting to it.
    stats: Any = None
    #: Durable-append hook into the run journal (``RunJournal.append``);
    #: backends that persist their own dispatch state (the distributed
    #: coordinator's lease grants) write through this.  None for
    #: un-journalled sweeps.
    journal_append: Optional[Callable[[str, Dict[str, Any]], int]] = None
    #: index -> count of journalled-but-uncommitted lease grants from a
    #: previous coordinator incarnation (crash recovery: these charge
    #: the cell's failure budget before re-dispatch).
    replayed_grants: Dict[int, int] = field(default_factory=dict)
    #: Dispatch callback: called when a cell is handed to a worker
    #: (pool submit, lease grant, serial pickup) so an external poller
    #: can distinguish queued from running cells.  Purely advisory --
    #: it must never raise and never affects results.
    on_start: Optional[Callable[[int], None]] = None

    def finalise(self, index: int, outcome: CellOutcome) -> None:
        if self.on_final is not None:
            self.on_final(index, outcome)

    def started(self, index: int) -> None:
        if self.on_start is not None:
            self.on_start(index)

    def count_retry(self, wait_s: float) -> None:
        """Account one retry (and its backoff wait) on stats + obs."""
        if self.stats is not None:
            self.stats.cell_retries += 1
            self.stats.backoff_wait_s += wait_s
        ob = obs.session()
        if ob is not None:
            reg = ob.registry
            reg.counter("sweep.retries").inc()
            if wait_s > 0.0:
                reg.counter("sweep.backoff_wait_s").inc(wait_s)


@dataclass
class ExecutorHeartbeat:
    """A point-in-time liveness snapshot of a backend."""

    #: Backend name ("local", "distributed", ...).
    backend: str
    #: Monotonic timestamp of the snapshot.
    at_monotonic: float
    #: Workers currently attached/usable.
    workers: int = 0
    #: Cells finished so far in the current batch.
    done: int = 0
    #: Cells handed out but not yet finished (leases, futures).
    in_flight: int = 0
    #: Extra backend-specific gauges.
    detail: Dict[str, float] = field(default_factory=dict)


class SweepExecutor:
    """Interface every sweep backend implements.

    The base class provides a serial reference implementation of
    :meth:`run` in terms of :meth:`submit`; backends override what
    they accelerate.  An executor instance is reusable across sweeps
    but never concurrently: ``attach`` / ``detach`` bracket one sweep.
    """

    #: Human-readable backend name (also the SimStats/obs tag).
    name = "base"

    def __init__(self) -> None:
        self._ctx: Optional[ExecutionContext] = None
        self._done = 0

    # -- lifecycle -----------------------------------------------------
    def attach(self, ctx: ExecutionContext) -> None:
        """Bind this executor to one sweep's context."""
        if self._ctx is not None:
            raise RuntimeError(f"{type(self).__name__} is already attached")
        self._ctx = ctx
        self._done = 0

    def detach(self) -> None:
        """Release the sweep binding (idempotent)."""
        self._ctx = None

    @property
    def ctx(self) -> ExecutionContext:
        if self._ctx is None:
            raise RuntimeError(
                f"{type(self).__name__} is not attached to a sweep")
        return self._ctx

    # -- execution -----------------------------------------------------
    def submit(self, cell: "ScenarioCell") -> CellItem:
        """Run one cell to a final outcome (result or CellFailure)."""
        ctx = self.ctx
        ctx.started(cell.index)
        item = timed_cell(cell, ctx.cell_timeout_s,
                          ctx.ckpts.get(cell.index),
                          ctx.checkpoint_every_steps, ctx.stall_timeout_s)
        self._done += 1
        ctx.finalise(item[0], item[1])
        return item

    def run(self, cells: Sequence["ScenarioCell"]) -> List[CellItem]:
        """Run a batch of cells; default maps :meth:`submit` serially."""
        return [self.submit(cell) for cell in cells]

    # -- introspection -------------------------------------------------
    def heartbeat(self) -> ExecutorHeartbeat:
        """Liveness/progress snapshot (cheap, thread-safe)."""
        return ExecutorHeartbeat(backend=self.name,
                                 at_monotonic=time.monotonic(),
                                 workers=1, done=self._done)

    def remote_blobs(self) -> List[obs.RunTelemetry]:
        """Telemetry blobs of cells computed *outside* this process.

        In-process cells merge their scopes into the live session
        directly; only out-of-process results carry blobs that the
        runner must fold in.  Drained (and reset) by the runner after
        :meth:`run`.
        """
        return []


class LocalProcessExecutor(SweepExecutor):
    """The historic in-repo backend: serial or ProcessPoolExecutor.

    ``workers=1`` (or a single-cell batch) runs cells serially
    in-process; anything wider fans out over a
    ``ProcessPoolExecutor``.  Behaviour -- including killed-worker
    containment, single-cell quarantine pools after a pool breakage,
    and byte-identical results for any worker count -- is exactly the
    pre-extraction ``ScenarioRunner`` logic.
    """

    name = "local"

    def __init__(self, workers: int = 1) -> None:
        super().__init__()
        self.workers = max(1, workers)
        self._blobs: List[obs.RunTelemetry] = []
        self._in_flight = 0

    def attach(self, ctx: ExecutionContext) -> None:
        super().attach(ctx)
        self._blobs = []
        self._in_flight = 0

    def run(self, cells: Sequence["ScenarioCell"]) -> List[CellItem]:
        if self.workers <= 1 or len(cells) <= 1:
            return [self.submit(cell) for cell in cells]
        return self._run_pool(cells)

    def heartbeat(self) -> ExecutorHeartbeat:
        return ExecutorHeartbeat(backend=self.name,
                                 at_monotonic=time.monotonic(),
                                 workers=self.workers, done=self._done,
                                 in_flight=self._in_flight)

    def remote_blobs(self) -> List[obs.RunTelemetry]:
        blobs, self._blobs = self._blobs, []
        return blobs

    # ------------------------------------------------------------------
    def _run_pool(self, pending: Sequence["ScenarioCell"]) -> List[CellItem]:
        """Fan out with containment for killed workers.

        Exceptions raised *inside* a cell never reach the pool (the
        worker converts them to :class:`CellFailure` payloads); the
        only way a future raises here is infrastructure failure -- the
        worker process died (OOM-kill, segfault, ``os._exit``), which
        breaks the whole pool and poisons every in-flight future.
        Those cells are retried -- after the retry policy's backoff --
        in fresh *single-cell* pools, so a cell that reliably kills
        its worker exhausts only its own attempt budget while the
        innocent bystanders complete.
        """
        ctx = self.ctx
        retry_policy = ctx.retry
        outcomes: Dict[int, CellItem] = {}
        attempts: Dict[int, int] = {cell.index: 0 for cell in pending}
        # Propagate the parent's observability switch into workers so
        # each cell harvests its telemetry onto the returned result.
        obs_on = ctx.obs_enabled
        todo: List["ScenarioCell"] = list(pending)
        isolate = False
        while todo:
            retry: List["ScenarioCell"] = []
            groups = [[cell] for cell in todo] if isolate else [todo]
            for group in groups:
                workers = min(self.workers, len(group))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = [
                        (pool.submit(timed_cell, cell, ctx.cell_timeout_s,
                                     ctx.ckpts.get(cell.index),
                                     ctx.checkpoint_every_steps,
                                     ctx.stall_timeout_s, obs_on),
                         cell)
                        for cell in group
                    ]
                    self._in_flight = len(futures)
                    for _, cell in futures:
                        ctx.started(cell.index)
                    for future, cell in futures:
                        try:
                            index, outcome, elapsed, steps = future.result()
                        except Exception as exc:
                            attempts[cell.index] += 1
                            if not retry_policy.allows(attempts[cell.index]):
                                failure = CellFailure(
                                    label=cell.label,
                                    error_type=type(exc).__name__,
                                    message=str(exc) or "worker process died",
                                    attempts=attempts[cell.index],
                                )
                                outcomes[cell.index] = (cell.index, failure,
                                                        0.0, 0)
                                self._done += 1
                                ctx.finalise(cell.index, failure)
                            else:
                                wait = retry_policy.sleep(
                                    attempts[cell.index], token=cell.label)
                                ctx.count_retry(wait)
                                retry.append(cell)
                            continue
                        if (isinstance(outcome, CellFailure)
                                and attempts[cell.index]):
                            outcome = dataclasses.replace(
                                outcome,
                                attempts=attempts[cell.index] + 1)
                        outcomes[cell.index] = (index, outcome, elapsed, steps)
                        self._done += 1
                        ctx.finalise(index, outcome)
                        if obs_on:
                            blob = getattr(outcome, "telemetry", None)
                            if blob is not None:
                                self._blobs.append(blob)
                    self._in_flight = 0
            todo = retry
            # After any pool breakage, quarantine survivors one per pool.
            isolate = True
        return [outcomes[cell.index] for cell in pending]
