"""Retry policies: exponential backoff with deterministic seeded jitter.

Every layer of the sweep engine that re-executes work — the local
executor retrying a cell whose worker died, the distributed
coordinator re-dispatching an expired lease, the networked cache
client probing a partitioned server — shares one policy object.  A
:class:`RetryPolicy` answers two questions:

* *may this unit try again?* — ``allows(attempt)`` caps total
  attempts;
* *how long until the next try?* — ``wait_s(attempt, token)`` grows
  exponentially and is de-synchronised by jitter.

The jitter is **deterministic**: it is derived by hashing
``(seed, token, attempt)``, not by sampling a global RNG.  Two runs of
the same sweep produce the same waits (reproducible schedules, stable
tests), while different cells (different ``token``\\ s) still spread
their retries out in time instead of thundering in lockstep.

The default policy is byte-equivalent to the sweep engine's historic
behaviour — one immediate retry, no waiting — so constructing a
:class:`~repro.sim.sweep.ScenarioRunner` without arguments changes
nothing.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total execution attempts allowed per unit (1 = never retry).
    backoff_base_s:
        Wait before the first retry; 0 retries immediately (the
        historic sweep behaviour).
    backoff_factor:
        Multiplier applied per further retry.
    backoff_max_s:
        Ceiling on any single wait.
    jitter:
        Fraction of each wait randomised *downward* (full jitter over
        ``[1 - jitter, 1] x wait``).  0 disables jitter.
    seed:
        Folds into the jitter hash so distinct runs can be
        de-correlated on purpose while each stays reproducible.
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff waits must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """The policy equivalent to the legacy ``retries: int`` knob."""
        if retries < 0:
            raise ValueError("retries must be non-negative")
        return cls(max_attempts=retries + 1)

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first (the legacy knob's view)."""
        return self.max_attempts - 1

    def allows(self, attempts_made: int) -> bool:
        """Whether a unit that has already run ``attempts_made`` times
        may run again."""
        return attempts_made < self.max_attempts

    def wait_s(self, attempts_made: int, token: str = "") -> float:
        """Seconds to wait before attempt ``attempts_made + 1``.

        ``attempts_made`` counts completed (failed) attempts, so the
        first retry passes 1.  ``token`` identifies the retried unit
        (e.g. a cell label) and decorrelates its jitter from every
        other unit's.
        """
        if attempts_made < 1 or self.backoff_base_s <= 0:
            return 0.0
        wait = self.backoff_base_s * (self.backoff_factor
                                      ** (attempts_made - 1))
        wait = min(wait, self.backoff_max_s)
        if self.jitter > 0.0:
            digest = hashlib.sha256(
                f"{self.seed}:{token}:{attempts_made}".encode()).digest()
            frac = int.from_bytes(digest[:8], "big") / float(2 ** 64)
            wait *= 1.0 - self.jitter * frac
        return wait

    def sleep(self, attempts_made: int, token: str = "",
              sleeper: Optional[Callable[[float], None]] = None) -> float:
        """Wait out the backoff for the next attempt; returns the wait.

        ``sleeper`` is injectable for tests (defaults to
        :func:`time.sleep`); a zero wait never calls it.
        """
        wait = self.wait_s(attempts_made, token)
        if wait > 0.0:
            (sleeper or time.sleep)(wait)
        return wait


#: The historic sweep-engine behaviour: one immediate retry.
DEFAULT_RETRY = RetryPolicy()
