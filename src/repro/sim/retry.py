"""Retry policies: exponential backoff with deterministic seeded jitter.

Every layer of the sweep engine that re-executes work — the local
executor retrying a cell whose worker died, the distributed
coordinator re-dispatching an expired lease, the networked cache
client probing a partitioned server — shares one policy object.
This module also hosts the :class:`CircuitBreaker` those same layers
use to stop *issuing* doomed remote calls while a peer is down.  A
:class:`RetryPolicy` answers two questions:

* *may this unit try again?* — ``allows(attempt)`` caps total
  attempts;
* *how long until the next try?* — ``wait_s(attempt, token)`` grows
  exponentially and is de-synchronised by jitter.

The jitter is **deterministic**: it is derived by hashing
``(seed, token, attempt)``, not by sampling a global RNG.  Two runs of
the same sweep produce the same waits (reproducible schedules, stable
tests), while different cells (different ``token``\\ s) still spread
their retries out in time instead of thundering in lockstep.

The default policy is byte-equivalent to the sweep engine's historic
behaviour — one immediate retry, no waiting — so constructing a
:class:`~repro.sim.sweep.ScenarioRunner` without arguments changes
nothing.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRY",
           "CircuitBreaker", "BreakerStats"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total execution attempts allowed per unit (1 = never retry).
    backoff_base_s:
        Wait before the first retry; 0 retries immediately (the
        historic sweep behaviour).
    backoff_factor:
        Multiplier applied per further retry.
    backoff_max_s:
        Ceiling on any single wait.
    jitter:
        Fraction of each wait randomised *downward* (full jitter over
        ``[1 - jitter, 1] x wait``).  0 disables jitter.
    seed:
        Folds into the jitter hash so distinct runs can be
        de-correlated on purpose while each stays reproducible.
    """

    max_attempts: int = 2
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff waits must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    @classmethod
    def from_retries(cls, retries: int) -> "RetryPolicy":
        """The policy equivalent to the legacy ``retries: int`` knob."""
        if retries < 0:
            raise ValueError("retries must be non-negative")
        return cls(max_attempts=retries + 1)

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first (the legacy knob's view)."""
        return self.max_attempts - 1

    def allows(self, attempts_made: int) -> bool:
        """Whether a unit that has already run ``attempts_made`` times
        may run again."""
        return attempts_made < self.max_attempts

    def wait_s(self, attempts_made: int, token: str = "") -> float:
        """Seconds to wait before attempt ``attempts_made + 1``.

        ``attempts_made`` counts completed (failed) attempts, so the
        first retry passes 1.  ``token`` identifies the retried unit
        (e.g. a cell label) and decorrelates its jitter from every
        other unit's.
        """
        if attempts_made < 1 or self.backoff_base_s <= 0:
            return 0.0
        wait = self.backoff_base_s * (self.backoff_factor
                                      ** (attempts_made - 1))
        wait = min(wait, self.backoff_max_s)
        if self.jitter > 0.0:
            digest = hashlib.sha256(
                f"{self.seed}:{token}:{attempts_made}".encode()).digest()
            frac = int.from_bytes(digest[:8], "big") / float(2 ** 64)
            wait *= 1.0 - self.jitter * frac
        return wait

    def sleep(self, attempts_made: int, token: str = "",
              sleeper: Optional[Callable[[float], None]] = None) -> float:
        """Wait out the backoff for the next attempt; returns the wait.

        ``sleeper`` is injectable for tests (defaults to
        :func:`time.sleep`); a zero wait never calls it.
        """
        wait = self.wait_s(attempts_made, token)
        if wait > 0.0:
            (sleeper or time.sleep)(wait)
        return wait


#: The historic sweep-engine behaviour: one immediate retry.
DEFAULT_RETRY = RetryPolicy()


@dataclass
class BreakerStats:
    """Lifetime counters of one :class:`CircuitBreaker`."""

    #: Closed -> open transitions (consecutive-failure threshold hit).
    trips: int = 0
    #: Open -> half-open transitions (one probe let through).
    probes: int = 0
    #: Calls refused while the circuit was open / a probe in flight.
    short_circuits: int = 0
    #: Half-open -> closed transitions (a probe succeeded).
    closes: int = 0


class CircuitBreaker:
    """A consecutive-failure circuit breaker with half-open probes.

    The classic three-state machine, sized for remote calls whose
    failure mode is "the peer is down, every call burns a timeout":

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the circuit (any success resets the streak);
    * **open** — :meth:`allow` refuses instantly (no connection
      attempt, no timeout) until ``reset_timeout_s`` has elapsed;
    * **half-open** — exactly one probe call is let through; its
      success closes the circuit, its failure re-opens it for another
      full ``reset_timeout_s``.  Concurrent callers during the probe
      are refused, so a recovering peer sees one connection, not a
      thundering herd.

    Thread-safe; all transitions happen under one lock.  ``clock`` is
    injectable for deterministic tests.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, failure_threshold: int = 1,
                 reset_timeout_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.stats = BreakerStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._state == self.CLOSED

    def allow(self) -> bool:
        """Whether a call may be issued right now.

        In the open state, returns True exactly once per
        ``reset_timeout_s`` window — the half-open probe — and refuses
        everything else without touching the network.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if (self._state == self.OPEN
                    and self._clock() - self._opened_at
                    >= self.reset_timeout_s):
                self._state = self.HALF_OPEN
                self.stats.probes += 1
                return True
            # Open inside the window, or a half-open probe is already
            # in flight: refuse without burning a timeout.
            self.stats.short_circuits += 1
            return False

    def record_success(self) -> None:
        """A call succeeded: close the circuit, reset the streak."""
        with self._lock:
            if self._state != self.CLOSED:
                self.stats.closes += 1
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """A call failed: extend the streak, maybe trip the circuit."""
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed: back to a full open window.
                self._state = self.OPEN
                self._opened_at = self._clock()
                return
            if (self._state == self.CLOSED
                    and self._failures >= self.failure_threshold):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.stats.trips += 1
