"""Metrics collection for simulation runs.

A :class:`MetricsRecorder` accumulates time series with bounded memory
(uniform decimation once a cap is hit) plus scalar counters, so long
discharge cycles stay cheap to record.

The storage is a preallocated NumPy buffer per series rather than a
Python list: appends are O(1) array stores, decimation is a single
strided copy done in place, and the summary statistics (`mean`,
`maximum`, `time_weighted_mean`) reduce over contiguous arrays.  This
is the hot recording path of ``run_discharge_cycle`` -- a day-long
trace at 1 s control steps records four series per step.

Decimation contract
-------------------
A series holds at most ``max_points`` samples.  When an append would
exceed the cap, every other sample (indices 0, 2, 4, ...) is kept and
the rest are dropped, halving the series and *doubling the spacing* of
the retained prefix.  Repeated decimation therefore yields a series
whose sample spacing is uniform at ``2**d`` times the recording
interval (``d`` = number of decimations), except possibly at the very
tail appended since the last decimation.  Consequences:

* ``mean`` and ``maximum`` are computed over the *retained* samples.
  ``maximum`` may miss a narrow spike that fell on a dropped sample.
* ``time_weighted_mean`` weights each retained sample by the gap to
  its predecessor, so it stays a consistent estimator across
  decimation boundaries: uniformly spaced input keeps uniform weights
  (the spacing doubles for every sample alike), and the estimate
  converges to the true time average as long as the signal varies
  slowly relative to the post-decimation spacing.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..durability.state import pack_state, unpack_state

__all__ = ["TimeSeries", "MetricsRecorder"]


class TimeSeries:
    """A capped (time, value) series backed by preallocated arrays.

    ``times`` and ``values`` expose the recorded samples as NumPy array
    views (read-only in spirit; do not resize them).  See the module
    docstring for the decimation contract.
    """

    __slots__ = ("max_points", "_t", "_v", "_n")

    def __init__(self, max_points: int = 4000) -> None:
        if max_points < 1:
            raise ValueError("max_points must be positive")
        self.max_points = max_points
        # One slot of headroom: decimation triggers *after* the append
        # that exceeds the cap, exactly like the historical list
        # implementation (`append; if len > cap: keep [::2]`).
        self._t = np.empty(max_points + 1, dtype=np.float64)
        self._v = np.empty(max_points + 1, dtype=np.float64)
        self._n = 0

    # ------------------------------------------------------------------
    def append(self, t: float, v: float) -> None:
        """Add a sample; decimates by 2 when the cap is exceeded."""
        n = self._n
        self._t[n] = t
        self._v[n] = v
        n += 1
        if n > self.max_points:
            # In-place strided copy == list[::2]: keeps even indices.
            m = (n + 1) // 2
            self._t[:m] = self._t[:n:2]
            self._v[:m] = self._v[:n:2]
            n = m
        self._n = n

    def __len__(self) -> int:
        return self._n

    @property
    def times(self) -> np.ndarray:
        """Recorded sample times as an array view."""
        return self._t[: self._n]

    @property
    def values(self) -> np.ndarray:
        """Recorded sample values as an array view."""
        return self._v[: self._n]

    @property
    def last(self) -> Tuple[float, float]:
        """Most recent (time, value) sample."""
        if self._n == 0:
            raise IndexError("empty series")
        return float(self._t[self._n - 1]), float(self._v[self._n - 1])

    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Unweighted mean of the retained values."""
        if self._n == 0:
            return 0.0
        return float(self._v[: self._n].mean())

    def maximum(self) -> float:
        """Largest retained value."""
        if self._n == 0:
            raise ValueError("empty series")
        return float(self._v[: self._n].max())

    def time_weighted_mean(self) -> float:
        """Mean weighted by the gaps between retained samples.

        Each sample ``i >= 1`` is weighted by ``t[i] - t[i-1]``; the
        first sample carries no weight.  Under the decimation contract
        (module docstring) the gaps stay uniform for uniformly recorded
        input, so this estimator is consistent across decimation
        boundaries.
        """
        n = self._n
        if n < 2:
            return self.mean()
        dt = np.diff(self._t[:n])
        span = float(dt.sum())
        if span <= 0:
            return self.mean()
        return float(np.dot(self._v[1:n], dt) / span)

    # ------------------------------------------------------------------
    # Pickle support (__slots__ + NumPy buffers).
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            "max_points": self.max_points,
            "times": self._t[: self._n].copy(),
            "values": self._v[: self._n].copy(),
        }

    def __setstate__(self, state) -> None:
        self.max_points = state["max_points"]
        self._t = np.empty(self.max_points + 1, dtype=np.float64)
        self._v = np.empty(self.max_points + 1, dtype=np.float64)
        n = len(state["times"])
        self._t[:n] = state["times"]
        self._v[:n] = state["values"]
        self._n = n


class MetricsRecorder:
    """Named time series plus counters."""

    def __init__(self, max_points: int = 4000) -> None:
        self._max_points = max_points
        self._series: Dict[str, TimeSeries] = {}
        self._counters: Dict[str, float] = {}

    def record(self, name: str, t: float, value: float) -> None:
        """Append a sample to a named series."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(self._max_points)
            self._series[name] = series
        series.append(t, value)

    def bump(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def series(self, name: str) -> TimeSeries:
        """Fetch a series (raises KeyError if never recorded)."""
        return self._series[name]

    def has_series(self, name: str) -> bool:
        """Whether a series exists."""
        return name in self._series

    def counter(self, name: str) -> float:
        """Fetch a counter, defaulting to 0."""
        return self._counters.get(name, 0.0)

    @property
    def series_names(self) -> List[str]:
        """Names of all recorded series."""
        return list(self._series)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """All series buffers (via their pickle form) and counters."""
        return pack_state(self, self._STATE_VERSION, {
            "max_points": self._max_points,
            "series": {name: ts.__getstate__()
                       for name, ts in self._series.items()},
            "counters": dict(self._counters),
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore series and counters in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._max_points = payload["max_points"]
        self._series = {}
        for name, ts_state in payload["series"].items():
            ts = TimeSeries.__new__(TimeSeries)
            ts.__setstate__(ts_state)
            self._series[name] = ts
        self._counters = dict(payload["counters"])
