"""Metrics collection for simulation runs.

A :class:`MetricsRecorder` accumulates time series with bounded memory
(uniform decimation once a cap is hit) plus scalar counters, so long
discharge cycles stay cheap to record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["TimeSeries", "MetricsRecorder"]


@dataclass
class TimeSeries:
    """A capped (time, value) series."""

    max_points: int = 4000
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        """Add a sample; decimates by 2 when the cap is exceeded."""
        self.times.append(t)
        self.values.append(v)
        if len(self.times) > self.max_points:
            self.times = self.times[::2]
            self.values = self.values[::2]

    def __len__(self) -> int:
        return len(self.times)

    @property
    def last(self) -> Tuple[float, float]:
        """Most recent (time, value) sample."""
        if not self.times:
            raise IndexError("empty series")
        return self.times[-1], self.values[-1]

    def mean(self) -> float:
        """Unweighted mean of the recorded values."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def maximum(self) -> float:
        """Largest recorded value."""
        if not self.values:
            raise ValueError("empty series")
        return max(self.values)

    def time_weighted_mean(self) -> float:
        """Mean weighted by the gaps between samples."""
        if len(self.times) < 2:
            return self.mean()
        total = 0.0
        span = 0.0
        for i in range(1, len(self.times)):
            dt = self.times[i] - self.times[i - 1]
            total += self.values[i] * dt
            span += dt
        return total / span if span > 0 else self.mean()


class MetricsRecorder:
    """Named time series plus counters."""

    def __init__(self, max_points: int = 4000) -> None:
        self._max_points = max_points
        self._series: Dict[str, TimeSeries] = {}
        self._counters: Dict[str, float] = {}

    def record(self, name: str, t: float, value: float) -> None:
        """Append a sample to a named series."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(self._max_points)
            self._series[name] = series
        series.append(t, value)

    def bump(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def series(self, name: str) -> TimeSeries:
        """Fetch a series (raises KeyError if never recorded)."""
        return self._series[name]

    def has_series(self, name: str) -> bool:
        """Whether a series exists."""
        return name in self._series

    def counter(self, name: str) -> float:
        """Fetch a counter, defaulting to 0."""
        return self._counters.get(name, 0.0)

    @property
    def series_names(self) -> List[str]:
        """Names of all recorded series."""
        return list(self._series)
