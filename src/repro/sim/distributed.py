"""Distributed sweep backend: TCP coordinator + elastic lease workers.

The :class:`DistributedExecutor` plugs into
:class:`~repro.sim.sweep.ScenarioRunner` through the
:class:`~repro.sim.executors.SweepExecutor` interface and fans a
sweep's pending cells out over the network:

* the **coordinator** (in the runner's process) serves a small
  request/response TCP protocol on localhost or a LAN address;
* **workers** (:class:`SweepWorker`, ``python -m repro.sim.distributed
  worker --connect HOST:PORT``) attach, lease cells, execute them with
  the exact same :func:`~repro.sim.executors.timed_cell` primitive the
  serial path uses -- results are byte-identical -- and report back;
* every dispatch is a **lease with a deadline**: a worker renews its
  lease while computing, and a lease whose deadline lapses (worker
  SIGKILL'd, network gone) is reclaimed and re-dispatched under the
  sweep's :class:`~repro.sim.retry.RetryPolicy` (exponential backoff,
  deterministic jitter, per-cell attempt caps);
* an idle worker **steals**: when the ready queue is empty but leases
  are outstanding past a steal age, it is granted a duplicate lease on
  the slowest cell.  Commits are idempotent -- the first result for a
  cell wins, duplicates are counted and discarded -- so stealing (and
  deliberately duplicated chaos leases) can never double-commit a
  journalled cell;
* workers are **elastic**: they may attach and detach mid-sweep, and
  if none ever show up (or all die) the executor degrades gracefully
  to in-process execution after a grace period -- a sweep never hangs
  on an empty cluster.

Trust model: frames are checksummed pickles -- corruption is detected
and torn frames surface as connection errors, but the protocol
authenticates nobody.  Run it on localhost or a trusted private
network only, exactly like a ``ProcessPoolExecutor`` whose workers
happen to live on other hosts.

Wire protocol (all messages are dicts inside checksummed frames, one
request + one response per connection):

====================  =================================================
request                response
====================  =================================================
``attach``            ``{ok, poll_s}``
``detach``            ``{ok}``
``request``           ``grant`` (lease + cell blob) / ``idle`` / ``done``
``renew``             ``{ok: bool}`` (False: lease already reclaimed)
``result``            ``{committed: bool}`` (False: duplicate, discarded)
``status``            coordinator heartbeat snapshot
====================  =================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from .executors import (CellFailure, ExecutionContext, ExecutorHeartbeat,
                        SweepExecutor, timed_cell)
from .retry import RetryPolicy

__all__ = [
    "ProtocolError",
    "send_msg",
    "recv_msg",
    "DistStats",
    "SweepCoordinator",
    "SweepWorker",
    "WorkerStats",
    "DistributedExecutor",
]

#: Frame magic: "capman distributed", protocol version 1.
_MAGIC = b"CD1"
#: Frame header: magic + payload length + sha256[:8] of the payload.
_HEADER = struct.Struct(">3sI8s")
#: Hard cap on a single frame (a pickled multi-day result is a few MB;
#: 256 MB means a corrupt length field fails fast instead of OOMing).
_MAX_FRAME = 256 * 1024 * 1024


class ProtocolError(ConnectionError):
    """A frame failed validation (bad magic, checksum, or length)."""


# ----------------------------------------------------------------------
# Checksummed frames
# ----------------------------------------------------------------------
def send_msg(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one message as a checksummed length-prefixed frame."""
    payload = pickle.dumps(message, protocol=4)
    digest = hashlib.sha256(payload).digest()[:8]
    sock.sendall(_HEADER.pack(_MAGIC, len(payload), digest) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; raises :class:`ProtocolError` on corruption.

    A torn or tampered frame never silently yields a wrong message:
    the length, magic and checksum are all validated before the
    payload is unpickled.
    """
    magic, length, digest = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > _MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds cap")
    payload = _recv_exact(sock, length)
    if hashlib.sha256(payload).digest()[:8] != digest:
        raise ProtocolError("frame checksum mismatch (torn or corrupt)")
    message = pickle.loads(payload)
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError("frame payload is not a protocol message")
    return message


def rpc(address: Tuple[str, int], message: Dict[str, Any],
        timeout_s: float = 10.0) -> Dict[str, Any]:
    """One request/response round trip on a fresh connection."""
    with socket.create_connection(address, timeout=timeout_s) as sock:
        send_msg(sock, message)
        return recv_msg(sock)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class DistStats:
    """Counters for one distributed run (exported as ``dist.*`` obs
    counters when a session is live)."""

    leases_granted: int = 0
    lease_expiries: int = 0
    steals: int = 0
    duplicate_results: int = 0
    retries: int = 0
    backoff_wait_s: float = 0.0
    worker_attaches: int = 0
    worker_detaches: int = 0
    #: Cells the parent executed in-process (graceful degradation).
    local_fallback_cells: int = 0
    #: Cells workers executed remotely.
    remote_cells: int = 0

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


@dataclass
class _Lease:
    lease_id: str
    index: int
    worker: str
    granted_monotonic: float
    deadline_monotonic: float
    #: True when this lease duplicates one still outstanding (a steal
    #: or a chaos duplicate) rather than a fresh/requeued dispatch.
    duplicate: bool = False


class SweepCoordinator:
    """Owns the lease table of one distributed sweep.

    All state transitions happen under one lock, and every final
    outcome flows through :meth:`commit` exactly once per cell index
    -- the coordinator is what makes work-stealing, duplicate lease
    delivery and worker loss safe for the journal.

    The server side is a tiny accept loop: one request + one response
    per connection, so a SIGKILL'd worker leaves no half-open session
    state behind -- only a lease that will expire.
    """

    def __init__(
        self,
        cells: Sequence[Any],
        ctx: ExecutionContext,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 30.0,
        steal_after_s: Optional[float] = None,
        worker_timeout_s: Optional[float] = None,
        poll_s: float = 0.05,
    ) -> None:
        self._cells = {cell.index: cell for cell in cells}
        self._order = [cell.index for cell in cells]
        self._ctx = ctx
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = (steal_after_s if steal_after_s is not None
                              else lease_timeout_s / 2.0)
        self.worker_timeout_s = (worker_timeout_s
                                 if worker_timeout_s is not None
                                 else lease_timeout_s)
        self.poll_s = poll_s
        self.stats = DistStats()

        self._lock = threading.Lock()
        #: (not-before monotonic, index) dispatch queue, spec order
        #: preserved among equally-ready cells.
        self._ready: List[Tuple[float, int]] = [
            (0.0, index) for index in self._order]
        self._leases: Dict[str, _Lease] = {}
        #: index -> number of live leases (1 normally, 2 when stolen).
        self._active: Dict[int, int] = {}
        #: index -> failed attempts (expired leases) so far.
        self._failed: Dict[int, int] = {}
        self._done: Dict[int, Tuple[int, Any, float, int]] = {}
        self._origin: Dict[int, str] = {}
        self._workers: Dict[str, float] = {}
        self._ever_attached = False
        #: Deferred (kind, value) events the executor thread drains to
        #: update SimStats/obs off the handler threads.
        self._events: List[Tuple[str, float]] = []
        #: Chaos injection: the next n grants leave the cell queued,
        #: so a second worker receives the *same* lease content.
        self._chaos_duplicate_leases = 0

        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in a daemon thread; returns address."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        server.settimeout(0.2)
        self._server = server
        self.port = server.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._serve, name="sweep-coordinator", daemon=True)
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    # -- server plumbing -----------------------------------------------
    def _serve(self) -> None:
        assert self._server is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            handler = threading.Thread(target=self._handle, args=(conn,),
                                       daemon=True)
            handler.start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            conn.settimeout(10.0)
            try:
                message = recv_msg(conn)
                response = self._dispatch(message)
                send_msg(conn, response)
            except (ConnectionError, OSError, pickle.UnpicklingError):
                # A torn request (dying worker, partition) is the
                # sender's problem: its lease will expire and the
                # cell will be re-dispatched.  Never crash the server.
                return

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "attach":
            return self._op_attach(str(message["worker"]))
        if op == "detach":
            return self._op_detach(str(message["worker"]))
        if op == "request":
            return self._op_request(str(message["worker"]))
        if op == "renew":
            return self._op_renew(str(message["lease"]))
        if op == "result":
            return self._op_result(str(message["lease"]),
                                   message["payload"])
        if op == "status":
            return {"op": "status", **self.snapshot()}
        return {"op": "error", "error": f"unknown op {op!r}"}

    # -- protocol ops --------------------------------------------------
    def _mark_seen_locked(self, worker: str) -> None:
        """Refresh a worker's liveness stamp.

        A worker we are not currently tracking -- never attached, or
        pruned as silent by :meth:`reap` -- counts as a (re-)attach,
        so attach/detach accounting stays exactly paired no matter how
        often a loaded host makes a live worker look dead.
        """
        if worker not in self._workers:
            self.stats.worker_attaches += 1
            self._ever_attached = True
        self._workers[worker] = time.monotonic()

    def _op_attach(self, worker: str) -> Dict[str, Any]:
        with self._lock:
            self._mark_seen_locked(worker)
        return {"op": "ok", "poll_s": self.poll_s,
                "lease_timeout_s": self.lease_timeout_s}

    def _op_detach(self, worker: str) -> Dict[str, Any]:
        with self._lock:
            if self._workers.pop(worker, None) is not None:
                self.stats.worker_detaches += 1
        return {"op": "ok"}

    def _op_request(self, worker: str) -> Dict[str, Any]:
        now = time.monotonic()
        with self._lock:
            self._mark_seen_locked(worker)
            self._reap_locked(now)
            grant = self._next_grant_locked(worker, now)
            if grant is not None:
                return grant
            if len(self._done) == len(self._cells):
                return {"op": "done"}
            return {"op": "idle", "wait_s": self.poll_s}

    def _op_renew(self, lease_id: str) -> Dict[str, Any]:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return {"op": "ok", "ok": False}
            lease.deadline_monotonic = (time.monotonic()
                                        + self.lease_timeout_s)
            self._mark_seen_locked(lease.worker)
            return {"op": "ok", "ok": True}

    def _op_result(self, lease_id: str, payload: bytes) -> Dict[str, Any]:
        item = pickle.loads(payload)
        index = item[0]
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            worker = lease.worker if lease is not None else "unknown"
            committed = self._commit_locked(index, item, origin="remote")
            if committed:
                self.stats.remote_cells += 1
            if lease is not None:
                self._workers[worker] = time.monotonic()
        return {"op": "ok", "committed": committed}

    # -- core state transitions (all _locked) --------------------------
    def _next_grant_locked(self, worker: str,
                           now: float) -> Optional[Dict[str, Any]]:
        index = self._pop_ready_locked(now)
        steal = False
        if index is None:
            index = self._steal_candidate_locked(now)
            if index is None:
                return None
            steal = True
            self.stats.steals += 1
        lease = _Lease(
            lease_id=uuid.uuid4().hex,
            index=index,
            worker=worker,
            granted_monotonic=now,
            deadline_monotonic=now + self.lease_timeout_s,
            duplicate=steal,
        )
        self._leases[lease.lease_id] = lease
        self._active[index] = self._active.get(index, 0) + 1
        self.stats.leases_granted += 1
        if self._chaos_duplicate_leases > 0 and not steal:
            # Chaos: leave the cell in the queue too, so another
            # worker is handed the same cell concurrently.
            self._chaos_duplicate_leases -= 1
            self._ready.append((now, index))
        ctx = self._ctx
        cell = self._cells[index]
        return {
            "op": "grant",
            "lease": lease.lease_id,
            "cell": pickle.dumps(cell, protocol=4),
            "lease_timeout_s": self.lease_timeout_s,
            "cell_timeout_s": ctx.cell_timeout_s,
            "ckpt_path": ctx.ckpts.get(index),
            "ckpt_every": ctx.checkpoint_every_steps,
            "stall_timeout_s": ctx.stall_timeout_s,
            "obs_enabled": ctx.obs_enabled,
        }

    def _pop_ready_locked(self, now: float) -> Optional[int]:
        """The first dispatchable queue entry (spec order among ready)."""
        for pos, (not_before, index) in enumerate(self._ready):
            if index in self._done:
                # Committed while a duplicate sat queued: drop it.
                self._ready.pop(pos)
                return self._pop_ready_locked(now)
            if not_before <= now:
                self._ready.pop(pos)
                return index
        return None

    def _steal_candidate_locked(self, now: float) -> Optional[int]:
        """The oldest lease past the steal age with no duplicate yet."""
        best: Optional[_Lease] = None
        for lease in self._leases.values():
            if lease.index in self._done:
                continue
            if now - lease.granted_monotonic < self.steal_after_s:
                continue
            if self._active.get(lease.index, 0) >= 2:
                continue  # already duplicated; don't pile on
            if best is None or lease.granted_monotonic < best.granted_monotonic:
                best = lease
        return best.index if best is not None else None

    def _reap_locked(self, now: float) -> None:
        """Reclaim expired leases; requeue or finally fail their cells."""
        expired = [lease for lease in self._leases.values()
                   if lease.deadline_monotonic < now]
        for lease in expired:
            self._leases.pop(lease.lease_id, None)
            index = lease.index
            self._active[index] = max(0, self._active.get(index, 0) - 1)
            if index in self._done:
                continue
            self.stats.lease_expiries += 1
            self._events.append(("expiry", 1.0))
            if self._active.get(index, 0) > 0:
                # A duplicate of this cell is still running; its own
                # fate decides the cell.
                continue
            self._failed[index] = self._failed.get(index, 0) + 1
            failed = self._failed[index]
            cell = self._cells[index]
            if self._ctx.retry.allows(failed):
                wait = self._ctx.retry.wait_s(failed, token=cell.label)
                self.stats.retries += 1
                self.stats.backoff_wait_s += wait
                self._events.append(("retry", wait))
                self._ready.append((now + wait, index))
            else:
                failure = CellFailure(
                    label=cell.label,
                    error_type="LeaseExpiredError",
                    message=(f"lease expired {failed} times (worker lost "
                             f"or stalled past {self.lease_timeout_s} s)"),
                    attempts=failed,
                )
                self._commit_locked(index, (index, failure, 0.0, 0),
                                    origin="expired", adjust_attempts=False)

    def _commit_locked(self, index: int, item: Tuple[int, Any, float, int],
                       origin: str, adjust_attempts: bool = True) -> bool:
        """Idempotently record a final outcome; True if it won."""
        if index in self._done:
            self.stats.duplicate_results += 1
            return False
        outcome = item[1]
        attempts = self._failed.get(index, 0)
        # A remotely-reported failure consumed one attempt on top of
        # the expired ones; an expiry-created failure already carries
        # its full count.
        if adjust_attempts and isinstance(outcome, CellFailure) and attempts:
            outcome = dataclasses.replace(outcome, attempts=attempts + 1)
            item = (item[0], outcome, item[2], item[3])
        self._done[index] = item
        self._origin[index] = origin
        # Every lease on this cell (steals, chaos duplicates) is now
        # moot; late results hit the duplicate branch above.
        for lease_id in [lid for lid, lease in self._leases.items()
                         if lease.index == index]:
            self._leases.pop(lease_id)
        self._active.pop(index, None)
        self._ctx.finalise(index, outcome)
        return True

    # -- executor-side API ---------------------------------------------
    def inject_duplicate_leases(self, n: int) -> None:
        """Chaos hook: duplicate-deliver the next ``n`` leases."""
        with self._lock:
            self._chaos_duplicate_leases += int(n)

    def reap(self) -> None:
        """Expire stale leases and prune silent workers (executor tick)."""
        now = time.monotonic()
        with self._lock:
            self._reap_locked(now)
            stale = [worker for worker, seen in self._workers.items()
                     if now - seen > self.worker_timeout_s]
            for worker in stale:
                self._workers.pop(worker, None)
                self.stats.worker_detaches += 1

    def claim_local(self) -> Optional[Tuple[str, Any]]:
        """Lease one ready cell to the in-process fallback executor."""
        now = time.monotonic()
        with self._lock:
            index = self._pop_ready_locked(now)
            if index is None:
                return None
            lease = _Lease(
                lease_id=uuid.uuid4().hex,
                index=index,
                worker="__local__",
                granted_monotonic=now,
                # The parent cannot SIGKILL itself out from under the
                # lease; a generous deadline keeps reap() honest anyway.
                deadline_monotonic=now + max(self.lease_timeout_s, 3600.0),
            )
            self._leases[lease.lease_id] = lease
            self._active[index] = self._active.get(index, 0) + 1
            self.stats.leases_granted += 1
            return lease.lease_id, self._cells[index]

    def commit_local(self, lease_id: str,
                     item: Tuple[int, Any, float, int]) -> bool:
        with self._lock:
            self._leases.pop(lease_id, None)
            committed = self._commit_locked(item[0], item, origin="local")
            if committed:
                self.stats.local_fallback_cells += 1
            return committed

    def drain_events(self) -> List[Tuple[str, float]]:
        with self._lock:
            events, self._events = self._events, []
            return events

    @property
    def finished(self) -> bool:
        with self._lock:
            return len(self._done) == len(self._cells)

    @property
    def live_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    @property
    def ever_attached(self) -> bool:
        with self._lock:
            return self._ever_attached

    def results(self) -> List[Tuple[int, Any, float, int]]:
        with self._lock:
            if len(self._done) != len(self._cells):
                raise RuntimeError(
                    f"coordinator has {len(self._done)}/{len(self._cells)} "
                    f"results")
            return [self._done[index] for index in self._order]

    def origins(self) -> Dict[int, str]:
        with self._lock:
            return dict(self._origin)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "cells": len(self._cells),
                "done": len(self._done),
                "ready": len(self._ready),
                "leases": len(self._leases),
                "workers": len(self._workers),
                "stats": self.stats.as_dict(),
            }


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
@dataclass
class WorkerStats:
    """What one worker did before the coordinator said ``done``."""

    cells: int = 0
    failures_reported: int = 0
    results_discarded: int = 0
    reconnects: int = 0


class _LeaseRenewer(threading.Thread):
    """Renews one lease on its own connection while a cell computes."""

    def __init__(self, address: Tuple[str, int], lease_id: str,
                 interval_s: float) -> None:
        super().__init__(name=f"lease-renew-{lease_id[:8]}", daemon=True)
        self._address = address
        self._lease_id = lease_id
        self._interval_s = max(0.05, interval_s)
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                reply = rpc(self._address,
                            {"op": "renew", "lease": self._lease_id},
                            timeout_s=5.0)
                if not reply.get("ok", False):
                    return  # lease reclaimed; stop renewing
            except (ConnectionError, OSError):
                continue  # transient partition: keep trying until told

    def stop(self) -> None:
        self._stop.set()


class SweepWorker:
    """One elastic worker process: attach, lease, compute, report, loop.

    Runs cells on its main thread, so the hard SIGALRM per-cell
    timeout applies exactly as in a local pool worker.  Connection
    loss is retried with the worker's own backoff; a coordinator that
    stays unreachable past the retry budget ends the worker (the sweep
    is over or the host is gone -- either way there is nothing left to
    do here).
    """

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: Optional[str] = None,
        poll_s: float = 0.05,
        rpc_timeout_s: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.address = address
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_s = poll_s
        self.rpc_timeout_s = rpc_timeout_s
        #: Connection retry schedule (not cell retries -- those are the
        #: coordinator's job).
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=8, backoff_base_s=0.05, backoff_factor=2.0,
            backoff_max_s=2.0, jitter=0.5, seed=hash(self.worker_id) & 0xffff)
        self.stats = WorkerStats()
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit after the current cell (detaches)."""
        self._stop.set()

    def _rpc(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """RPC with connection retries; None when the coordinator is gone."""
        attempts = 0
        while True:
            try:
                return rpc(self.address, message,
                           timeout_s=self.rpc_timeout_s)
            except (ConnectionError, OSError):
                attempts += 1
                if not self.retry.allows(attempts):
                    return None
                self.stats.reconnects += 1
                self.retry.sleep(attempts, token=message.get("op", ""))

    def run(self, max_cells: Optional[int] = None) -> WorkerStats:
        """Work until the coordinator reports the sweep done."""
        if self._rpc({"op": "attach", "worker": self.worker_id}) is None:
            return self.stats
        try:
            while not self._stop.is_set():
                if max_cells is not None and self.stats.cells >= max_cells:
                    break
                reply = self._rpc({"op": "request",
                                   "worker": self.worker_id})
                if reply is None or reply.get("op") == "done":
                    break
                if reply.get("op") == "idle":
                    time.sleep(float(reply.get("wait_s", self.poll_s)))
                    continue
                if reply.get("op") != "grant":
                    break
                self._execute_grant(reply)
        finally:
            self._rpc({"op": "detach", "worker": self.worker_id})
        return self.stats

    def _execute_grant(self, grant: Dict[str, Any]) -> None:
        cell = pickle.loads(grant["cell"])
        lease_id = grant["lease"]
        renewer = _LeaseRenewer(
            self.address, lease_id,
            interval_s=float(grant["lease_timeout_s"]) / 3.0)
        renewer.start()
        try:
            item = timed_cell(
                cell,
                grant.get("cell_timeout_s"),
                grant.get("ckpt_path"),
                int(grant.get("ckpt_every") or 0),
                grant.get("stall_timeout_s"),
                obs_enabled=bool(grant.get("obs_enabled")),
            )
        finally:
            renewer.stop()
        if isinstance(item[1], CellFailure):
            self.stats.failures_reported += 1
        reply = self._rpc({
            "op": "result",
            "lease": lease_id,
            "worker": self.worker_id,
            "payload": pickle.dumps(item, protocol=4),
        })
        self.stats.cells += 1
        if reply is not None and not reply.get("committed", False):
            self.stats.results_discarded += 1


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class DistributedExecutor(SweepExecutor):
    """Sweep backend that coordinates networked lease workers.

    Parameters
    ----------
    host / port:
        Bind address of the coordinator (port 0 picks a free one; the
        bound port is on :attr:`coordinator` and in the heartbeat).
    lease_timeout_s:
        Lease deadline; workers renew at a third of this, so worker
        loss is detected within one lease timeout of the last renewal.
    steal_after_s:
        Age after which an outstanding lease may be duplicated by an
        idle worker (default: half the lease timeout).
    spawn_workers:
        Convenience: launch this many local worker subprocesses for
        the duration of each sweep (their PIDs are on
        :meth:`worker_pids` -- the chaos harness kills them).
    workers_grace_s:
        How long to wait for at least one worker before degrading to
        in-process execution (when ``local_fallback``).
    local_fallback:
        When True (default) the parent's own process executes ready
        cells whenever no live workers exist past the grace period --
        an empty or fully-dead cluster degrades to exactly the serial
        path instead of hanging.
    max_wall_s:
        Optional hard ceiling on one sweep; on expiry the remaining
        cells fail as ``DistributedTimeoutError`` CellFailures
        (only reachable with ``local_fallback=False``).
    """

    name = "distributed"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 30.0,
        steal_after_s: Optional[float] = None,
        spawn_workers: int = 0,
        workers_grace_s: float = 2.0,
        local_fallback: bool = True,
        poll_s: float = 0.02,
        max_wall_s: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = steal_after_s
        self.spawn_workers = spawn_workers
        self.workers_grace_s = workers_grace_s
        self.local_fallback = local_fallback
        self.poll_s = poll_s
        self.max_wall_s = max_wall_s
        self.coordinator: Optional[SweepCoordinator] = None
        self.stats: DistStats = DistStats()
        self._procs: List[subprocess.Popen] = []
        self._blobs: List[obs.RunTelemetry] = []
        #: Chaos request carried into the next run's coordinator.
        self._pending_duplicate_leases = 0

    # -- chaos hooks ---------------------------------------------------
    def inject_duplicate_leases(self, n: int) -> None:
        """Duplicate-deliver the next ``n`` leases (live or queued)."""
        if self.coordinator is not None:
            self.coordinator.inject_duplicate_leases(n)
        else:
            self._pending_duplicate_leases += int(n)

    def worker_pids(self) -> List[int]:
        """PIDs of the spawned worker subprocesses still running."""
        return [proc.pid for proc in self._procs if proc.poll() is None]

    # -- SweepExecutor -------------------------------------------------
    def run(self, cells: Sequence[Any]) -> List[Tuple[int, Any, float, int]]:
        ctx = self.ctx
        coordinator = SweepCoordinator(
            cells, ctx, host=self.host, port=self.port,
            lease_timeout_s=self.lease_timeout_s,
            steal_after_s=self.steal_after_s,
        )
        if self._pending_duplicate_leases:
            coordinator.inject_duplicate_leases(
                self._pending_duplicate_leases)
            self._pending_duplicate_leases = 0
        self.coordinator = coordinator
        self._blobs = []
        coordinator.start()
        started = time.monotonic()
        try:
            self._spawn_local_workers(coordinator.address)
            while not coordinator.finished:
                coordinator.reap()
                self._drain_events(ctx)
                if self.max_wall_s is not None \
                        and time.monotonic() - started > self.max_wall_s:
                    self._fail_remaining(coordinator)
                    break
                if self._should_fall_back(coordinator, started):
                    claimed = coordinator.claim_local()
                    if claimed is not None:
                        lease_id, cell = claimed
                        item = timed_cell(
                            cell, ctx.cell_timeout_s,
                            ctx.ckpts.get(cell.index),
                            ctx.checkpoint_every_steps,
                            ctx.stall_timeout_s)
                        coordinator.commit_local(lease_id, item)
                        continue
                time.sleep(self.poll_s)
            self._drain_events(ctx)
            items = coordinator.results()
            if ctx.obs_enabled:
                origins = coordinator.origins()
                for item in items:
                    if origins.get(item[0]) != "remote":
                        continue
                    blob = getattr(item[1], "telemetry", None)
                    if blob is not None:
                        self._blobs.append(blob)
            self._done = len(items)
            self.stats = coordinator.stats
            self._export_counters()
            return items
        finally:
            self._reap_local_workers()
            coordinator.stop()

    def heartbeat(self) -> ExecutorHeartbeat:
        coordinator = self.coordinator
        if coordinator is None:
            return ExecutorHeartbeat(backend=self.name,
                                     at_monotonic=time.monotonic())
        snap = coordinator.snapshot()
        return ExecutorHeartbeat(
            backend=self.name,
            at_monotonic=time.monotonic(),
            workers=snap["workers"],
            done=snap["done"],
            in_flight=snap["leases"],
            detail={"ready": float(snap["ready"]),
                    "port": float(coordinator.port),
                    **{k: float(v) for k, v in snap["stats"].items()}},
        )

    def remote_blobs(self) -> List[obs.RunTelemetry]:
        blobs, self._blobs = self._blobs, []
        return blobs

    # -- internals -----------------------------------------------------
    def _should_fall_back(self, coordinator: SweepCoordinator,
                          started: float) -> bool:
        if not self.local_fallback:
            return False
        if coordinator.live_workers > 0:
            return False
        grace = self.workers_grace_s
        if coordinator.ever_attached:
            # Workers existed and all went away: degrade immediately
            # once their leases have been reaped.
            return True
        return time.monotonic() - started >= grace

    def _fail_remaining(self, coordinator: SweepCoordinator) -> None:
        while True:
            claimed = coordinator.claim_local()
            if claimed is None:
                break
            lease_id, cell = claimed
            failure = CellFailure(
                label=cell.label,
                error_type="DistributedTimeoutError",
                message=f"sweep exceeded max_wall_s={self.max_wall_s}",
            )
            coordinator.commit_local(lease_id,
                                     (cell.index, failure, 0.0, 0))

    def _drain_events(self, ctx: ExecutionContext) -> None:
        coordinator = self.coordinator
        if coordinator is None:
            return
        for kind, value in coordinator.drain_events():
            if kind == "retry":
                ctx.count_retry(value)

    def _export_counters(self) -> None:
        ob = obs.session()
        if ob is None:
            return
        reg = ob.registry
        for name, value in self.stats.as_dict().items():
            if value:
                reg.counter(f"dist.{name}").inc(value)

    def _spawn_local_workers(self, address: Tuple[str, int]) -> None:
        if not self.spawn_workers:
            return
        host, port = address
        env = dict(os.environ)
        src_root = _repro_src_root()
        env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_root)
        for _ in range(self.spawn_workers):
            self._procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.sim.distributed", "worker",
                 "--connect", f"{host}:{port}"],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            ))

    def _reap_local_workers(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
        self._procs = []


def _repro_src_root() -> str:
    """The sys.path root that makes ``import repro`` work in workers."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_address(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim.distributed worker --connect HOST:PORT``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sim.distributed",
        description="Distributed sweep protocol endpoints")
    sub = parser.add_subparsers(dest="command", required=True)
    worker = sub.add_parser(
        "worker", help="attach to a coordinator and execute leased cells")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    worker.add_argument("--id", default=None, help="worker identity")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after this many cells (default: run "
                             "until the sweep completes)")
    status = sub.add_parser("status", help="print a coordinator snapshot")
    status.add_argument("--connect", required=True, metavar="HOST:PORT")
    args = parser.parse_args(argv)

    address = _parse_address(args.connect)
    if args.command == "worker":
        stats = SweepWorker(address, worker_id=args.id).run(
            max_cells=args.max_cells)
        print(f"worker done: {stats.cells} cells "
              f"({stats.failures_reported} failures, "
              f"{stats.results_discarded} discarded duplicates, "
              f"{stats.reconnects} reconnects)")
        return 0
    reply = rpc(address, {"op": "status", "worker": "cli"})
    for key, value in reply.items():
        if key != "op":
            print(f"{key}: {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
