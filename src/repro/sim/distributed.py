"""Distributed sweep backend: TCP coordinator + elastic lease workers.

The :class:`DistributedExecutor` plugs into
:class:`~repro.sim.sweep.ScenarioRunner` through the
:class:`~repro.sim.executors.SweepExecutor` interface and fans a
sweep's pending cells out over the network:

* the **coordinator** (in the runner's process) serves a small
  request/response TCP protocol on localhost or a LAN address;
* **workers** (:class:`SweepWorker`, ``python -m repro.sim.distributed
  worker --connect HOST:PORT``) attach, lease cells, execute them with
  the exact same :func:`~repro.sim.executors.timed_cell` primitive the
  serial path uses -- results are byte-identical -- and report back;
* every dispatch is a **lease with a deadline**: a worker renews its
  lease while computing, and a lease whose deadline lapses (worker
  SIGKILL'd, network gone) is reclaimed and re-dispatched under the
  sweep's :class:`~repro.sim.retry.RetryPolicy` (exponential backoff,
  deterministic jitter, per-cell attempt caps);
* an idle worker **steals**: when the ready queue is empty but leases
  are outstanding past a steal age, it is granted a duplicate lease on
  the slowest cell.  Commits are idempotent -- the first result for a
  cell wins, duplicates are counted and discarded -- so stealing (and
  deliberately duplicated chaos leases) can never double-commit a
  journalled cell;
* workers are **elastic**: they may attach and detach mid-sweep, and
  if none ever show up (or all die) the executor degrades gracefully
  to in-process execution after a grace period -- a sweep never hangs
  on an empty cluster.

Trust model: frames are checksummed pickles -- corruption is detected
and torn frames surface as connection errors.  With
``CAPMAN_DIST_SECRET`` set (same value on every host), the checksum
becomes an HMAC-SHA256 tag: a frame from a peer without the secret --
or tampered in flight -- is rejected before its payload is unpickled,
which matters because unpickling attacker-controlled bytes is code
execution.  Servers additionally bound frame sizes, enforce a read
deadline per connection (a slow-dripping client cannot hold a handler
thread hostage) and cap concurrent connections (excess peers are shed
with a closed socket, never by stalling dispatch).  Without a secret
the protocol authenticates nobody: localhost or a trusted private
network only, exactly like a ``ProcessPoolExecutor`` whose workers
happen to live on other hosts.

Wire protocol (all messages are dicts inside checksummed frames, one
request + one response per connection):

====================  =================================================
request                response
====================  =================================================
``attach``            ``{ok, poll_s}``
``detach``            ``{ok}``
``request``           ``grant`` (lease + cell blob) / ``idle`` / ``done``
``renew``             ``{ok: bool}`` (False: lease already reclaimed)
``result``            ``{committed: bool}`` (False: duplicate, discarded)
``status``            coordinator heartbeat snapshot
====================  =================================================
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from .. import obs
from .executors import (CellFailure, ExecutionContext, ExecutorHeartbeat,
                        SweepExecutor, timed_cell)
from .retry import RetryPolicy

__all__ = [
    "ProtocolError",
    "AuthenticationError",
    "CoordinatorUnreachableError",
    "protocol_secret",
    "send_msg",
    "recv_msg",
    "FrameServer",
    "FrameServerStats",
    "DistStats",
    "SweepCoordinator",
    "SweepWorker",
    "WorkerStats",
    "DistributedExecutor",
]

#: Frame magic: "capman distributed", protocol version 1.
_MAGIC = b"CD1"
#: Frame header: magic + payload length + 8-byte payload tag (plain
#: sha256 prefix, or HMAC-SHA256 prefix when a secret is configured).
_HEADER = struct.Struct(">3sI8s")
#: Hard cap on a single frame (a pickled multi-day result is a few MB;
#: 256 MB means a corrupt length field fails fast instead of OOMing).
_MAX_FRAME = 256 * 1024 * 1024

#: Environment variable carrying the shared protocol secret.
SECRET_ENV = "CAPMAN_DIST_SECRET"


class ProtocolError(ConnectionError):
    """A frame failed validation (bad magic, checksum, or length)."""


class AuthenticationError(ProtocolError):
    """A frame carried a valid plain checksum but no/wrong HMAC tag --
    the peer does not hold ``CAPMAN_DIST_SECRET``."""


class CoordinatorUnreachableError(ConnectionError):
    """The coordinator stayed unreachable past a worker's per-call
    retry budget.  Distinct from the sweep being *done*: the caller
    should ride out the outage (the coordinator may be restarting from
    its journal), not exit."""


def protocol_secret() -> Optional[bytes]:
    """The shared frame secret from ``CAPMAN_DIST_SECRET`` (or None).

    Read fresh on every call so tests (and long-lived processes whose
    environment is updated) see changes without re-importing.
    """
    value = os.environ.get(SECRET_ENV)
    if not value:
        return None
    return value.encode("utf-8")


def _frame_tag(payload: bytes, secret: Optional[bytes]) -> bytes:
    """8-byte payload tag: keyed (HMAC) when a secret is configured."""
    if secret:
        return hmac.new(secret, payload, hashlib.sha256).digest()[:8]
    return hashlib.sha256(payload).digest()[:8]


# ----------------------------------------------------------------------
# Checksummed (optionally authenticated) frames
# ----------------------------------------------------------------------
def send_msg(sock: socket.socket, message: Dict[str, Any],
             secret: Optional[bytes] = None) -> None:
    """Send one message as a tagged length-prefixed frame.

    ``secret=None`` picks up :func:`protocol_secret` from the
    environment; pass ``b""`` to force an unauthenticated frame.
    """
    if secret is None:
        secret = protocol_secret()
    payload = pickle.dumps(message, protocol=4)
    tag = _frame_tag(payload, secret)
    sock.sendall(_HEADER.pack(_MAGIC, len(payload), tag) + payload)


def _recv_exact(sock: socket.socket, n: int,
                deadline: Optional[float] = None) -> bytes:
    """Read exactly ``n`` bytes, under an absolute monotonic deadline.

    The deadline bounds the *whole* read, re-armed before every chunk:
    a peer dripping one byte per poll (slowloris) trips it just like a
    silent one, surfacing as :class:`ProtocolError` instead of holding
    the handler thread for the per-chunk socket timeout times ``n``.
    """
    chunks = []
    got = 0
    while got < n:
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ProtocolError(
                    f"read deadline exceeded mid-frame ({got}/{n} bytes)")
            sock.settimeout(remaining)
        try:
            chunk = sock.recv(n - got)
        except socket.timeout:
            raise ProtocolError(
                f"read deadline exceeded mid-frame ({got}/{n} bytes)")
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket, secret: Optional[bytes] = None,
             deadline_s: Optional[float] = None,
             max_frame: int = _MAX_FRAME) -> Dict[str, Any]:
    """Receive one frame; raises :class:`ProtocolError` on corruption.

    A torn or tampered frame never silently yields a wrong message:
    the length, magic and tag are all validated *before* the payload
    is unpickled -- with a secret configured, an unauthenticated or
    tampered payload is never handed to ``pickle.loads`` at all.

    ``secret=None`` reads :func:`protocol_secret` from the
    environment; ``b""`` forces plain checksumming.  ``deadline_s``
    bounds the whole receive (header + payload) in wall seconds;
    ``max_frame`` rejects oversized length fields before any payload
    allocation.
    """
    if secret is None:
        secret = protocol_secret()
    deadline = (time.monotonic() + deadline_s
                if deadline_s is not None else None)
    magic, length, tag = _HEADER.unpack(
        _recv_exact(sock, _HEADER.size, deadline))
    if magic != _MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > max_frame:
        raise ProtocolError(f"frame length {length} exceeds cap")
    payload = _recv_exact(sock, length, deadline)
    if not hmac.compare_digest(_frame_tag(payload, secret), tag):
        if secret and hmac.compare_digest(_frame_tag(payload, b""), tag):
            # Intact plain-checksummed frame from a peer without the
            # secret: an authentication failure, not line noise.
            raise AuthenticationError(
                "frame is not authenticated (peer is missing "
                f"{SECRET_ENV} or holds a different secret)")
        raise ProtocolError("frame checksum mismatch (torn or corrupt)")
    message = pickle.loads(payload)
    if not isinstance(message, dict) or "op" not in message:
        raise ProtocolError("frame payload is not a protocol message")
    return message


def rpc(address: Tuple[str, int], message: Dict[str, Any],
        timeout_s: float = 10.0,
        secret: Optional[bytes] = None) -> Dict[str, Any]:
    """One request/response round trip on a fresh connection."""
    with socket.create_connection(address, timeout=timeout_s) as sock:
        send_msg(sock, message, secret=secret)
        return recv_msg(sock, secret=secret, deadline_s=timeout_s)


# ----------------------------------------------------------------------
# Shared server shell: accept loop + admission control + hardening
# ----------------------------------------------------------------------
@dataclass
class FrameServerStats:
    """Hostile-peer accounting for one :class:`FrameServer`."""

    connections: int = 0
    #: Connections closed unserved because the admission cap was full.
    connections_shed: int = 0
    #: Frames rejected for framing reasons (bad magic/length/checksum,
    #: torn reads, blown read deadlines).
    protocol_errors: int = 0
    #: Intact frames rejected for a missing/wrong HMAC tag.
    auth_failures: int = 0


class FrameServer:
    """One-request-per-connection TCP server over tagged frames.

    The shared shell under :class:`SweepCoordinator` and
    :class:`~repro.sim.cache_server.CacheServer`: accept loop in a
    daemon thread, one handler thread per connection, and the
    hardening that keeps a malformed or hostile peer from stalling
    dispatch --

    * **admission control**: at most ``max_connections`` handler
      threads; excess connections are closed immediately (the client
      sees a reset and retries) instead of queueing behind a slow peer;
    * **read deadline**: each connection gets ``read_deadline_s`` of
      wall clock to deliver its full request frame, dripped bytes
      included;
    * **authentication**: frames are verified against
      :func:`protocol_secret` (resolved at :meth:`start`) before
      anything is unpickled; failures are counted, the connection is
      closed without a reply, and the handler thread moves on.

    ``gate`` (returning False to drop a connection unserved) and
    ``sender`` (replacing :func:`send_msg` for replies) are chaos
    hooks used by the cache server's partition / torn-reply injection.
    """

    def __init__(
        self,
        handler: Callable[[Dict[str, Any]], Dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        name: str = "frame-server",
        max_connections: int = 64,
        read_deadline_s: float = 10.0,
        gate: Optional[Callable[[socket.socket], bool]] = None,
        sender: Optional[
            Callable[[socket.socket, Dict[str, Any]], None]] = None,
    ) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self.name = name
        self.max_connections = max_connections
        self.read_deadline_s = read_deadline_s
        self.gate = gate
        self.sender = sender
        self.stats = FrameServerStats()
        self._secret: Optional[bytes] = None
        self._slots = threading.Semaphore(max_connections)
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in a daemon thread; returns address."""
        self._secret = protocol_secret()
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.port))
        server.listen(64)
        server.settimeout(0.2)
        self._server = server
        self.port = server.getsockname()[1]
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._serve, name=self.name, daemon=True)
        self._accept_thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def secret(self) -> Optional[bytes]:
        """The frame secret resolved at :meth:`start` (None before)."""
        return self._secret

    def _serve(self) -> None:
        assert self._server is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            self.stats.connections += 1
            if not self._slots.acquire(blocking=False):
                # Every handler slot is busy: shed this peer instead of
                # queueing it behind whatever is slow.  Healthy clients
                # treat the reset as a transient error and retry.
                self.stats.connections_shed += 1
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            threading.Thread(target=self._handle, args=(conn,),
                             daemon=True).start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            with conn:
                conn.settimeout(self.read_deadline_s)
                if self.gate is not None and not self.gate(conn):
                    return
                try:
                    message = recv_msg(conn, secret=self._secret,
                                       deadline_s=self.read_deadline_s)
                except AuthenticationError:
                    self.stats.auth_failures += 1
                    return  # close without a reply; nothing unpickled
                except ProtocolError:
                    self.stats.protocol_errors += 1
                    return
                except (ConnectionError, OSError,
                        pickle.UnpicklingError):
                    # A torn request (dying peer, partition) is the
                    # sender's problem.  Never crash the server.
                    self.stats.protocol_errors += 1
                    return
                reply = self.handler(message)
                try:
                    if self.sender is not None:
                        self.sender(conn, reply)
                    else:
                        send_msg(conn, reply, secret=self._secret)
                except (ConnectionError, OSError):
                    return  # peer vanished mid-reply: its retry problem
        finally:
            self._slots.release()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
@dataclass
class DistStats:
    """Counters for one distributed run (exported as ``dist.*`` obs
    counters when a session is live)."""

    leases_granted: int = 0
    lease_expiries: int = 0
    steals: int = 0
    duplicate_results: int = 0
    retries: int = 0
    backoff_wait_s: float = 0.0
    worker_attaches: int = 0
    worker_detaches: int = 0
    #: Cells the parent executed in-process (graceful degradation).
    local_fallback_cells: int = 0
    #: Cells workers executed remotely.
    remote_cells: int = 0
    #: Coordinator-state records written to the run journal.
    journal_records: int = 0
    #: In-flight leases inherited from a crashed coordinator's journal
    #: and expired/re-dispatched on restart.
    recovered_leases: int = 0
    #: Hostile-peer accounting, folded in from the frame server.
    auth_failures: int = 0
    protocol_errors: int = 0
    connections_shed: int = 0

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


@dataclass
class _Lease:
    lease_id: str
    index: int
    worker: str
    granted_monotonic: float
    deadline_monotonic: float
    #: True when this lease duplicates one still outstanding (a steal
    #: or a chaos duplicate) rather than a fresh/requeued dispatch.
    duplicate: bool = False


class SweepCoordinator:
    """Owns the lease table of one distributed sweep.

    All state transitions happen under one lock, and every final
    outcome flows through :meth:`commit` exactly once per cell index
    -- the coordinator is what makes work-stealing, duplicate lease
    delivery and worker loss safe for the journal.

    The server side is a :class:`FrameServer`: one request + one
    response per connection, so a SIGKILL'd worker leaves no half-open
    session state behind -- only a lease that will expire.

    **Crash durability.**  When the execution context carries a
    journal hook (``ctx.journal_append``), every lease grant and
    renewal is written through the run journal *before* the reply
    leaves this process, alongside the commits the runner already
    journals.  A SIGKILLed coordinator therefore leaves a complete
    account of its dispatch state: on restart (``ScenarioRunner.resume``)
    the committed cells are replayed without recomputation, and every
    lease that was in flight at the kill (``ctx.replayed_grants``) is
    treated as expired -- charged one attempt and re-dispatched
    through the sweep's :class:`~repro.sim.retry.RetryPolicy`, or
    finally failed if its budget is spent.  Surviving workers
    re-attach and re-deliver results by cell index, so first-commit-
    wins dedupe holds across the crash exactly as within one run.
    """

    def __init__(
        self,
        cells: Sequence[Any],
        ctx: ExecutionContext,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 30.0,
        steal_after_s: Optional[float] = None,
        worker_timeout_s: Optional[float] = None,
        poll_s: float = 0.05,
        max_connections: int = 64,
        read_deadline_s: float = 10.0,
    ) -> None:
        self._cells = {cell.index: cell for cell in cells}
        self._order = [cell.index for cell in cells]
        self._ctx = ctx
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = (steal_after_s if steal_after_s is not None
                              else lease_timeout_s / 2.0)
        self.worker_timeout_s = (worker_timeout_s
                                 if worker_timeout_s is not None
                                 else lease_timeout_s)
        self.poll_s = poll_s
        self.stats = DistStats()

        self._lock = threading.Lock()
        #: (not-before monotonic, index) dispatch queue, spec order
        #: preserved among equally-ready cells.
        self._ready: List[Tuple[float, int]] = [
            (0.0, index) for index in self._order]
        self._leases: Dict[str, _Lease] = {}
        #: index -> number of live leases (1 normally, 2 when stolen).
        self._active: Dict[int, int] = {}
        #: index -> failed attempts (expired leases) so far.
        self._failed: Dict[int, int] = {}
        self._done: Dict[int, Tuple[int, Any, float, int]] = {}
        self._origin: Dict[int, str] = {}
        self._workers: Dict[str, float] = {}
        self._ever_attached = False
        #: Deferred (kind, value) events the executor thread drains to
        #: update SimStats/obs off the handler threads.
        self._events: List[Tuple[str, float]] = []
        #: Chaos injection: the next n grants leave the cell queued,
        #: so a second worker receives the *same* lease content.
        self._chaos_duplicate_leases = 0

        self._frames = FrameServer(
            handler=self._dispatch, host=host, port=port,
            name="sweep-coordinator", max_connections=max_connections,
            read_deadline_s=read_deadline_s)

        self._recover_replayed_grants()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, listen and serve in a daemon thread; returns address."""
        self.host, self.port = self._frames.start()
        return self.host, self.port

    def stop(self) -> None:
        self._frames.stop()
        self._sync_frame_stats()

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def frame_stats(self) -> "FrameServerStats":
        return self._frames.stats

    def _sync_frame_stats(self) -> None:
        frames = self._frames.stats
        self.stats.auth_failures = frames.auth_failures
        self.stats.protocol_errors = frames.protocol_errors
        self.stats.connections_shed = frames.connections_shed

    # -- journal / crash recovery --------------------------------------
    def _journal_locked(self, rtype: str, data: Dict[str, Any]) -> None:
        """Write one coordinator-state record through the run journal.

        Called under the coordinator lock *before* the state change is
        visible to any peer, so the journal is a true write-ahead log:
        a grant a worker ever saw has a durable record.
        """
        if self._ctx.journal_append is None:
            return
        self._ctx.journal_append(rtype, data)
        self.stats.journal_records += 1

    def _recover_replayed_grants(self) -> None:
        """Expire leases inherited from a crashed coordinator.

        ``ctx.replayed_grants`` maps cell index -> dispatch episodes a
        previous coordinator journalled without a matching commit.
        Each such cell was in flight (or about to be) at the crash:
        charge the attempts, then re-dispatch through the retry policy
        -- with its backoff and jitter, exactly like a lease that
        expired in-process -- or finally fail the cell if the crash
        consumed its whole budget.  Runs in the constructor, before
        the server accepts connections.
        """
        if not self._ctx.replayed_grants:
            return
        now = time.monotonic()
        for index, grants in sorted(self._ctx.replayed_grants.items()):
            if index not in self._cells or grants <= 0:
                continue
            self.stats.recovered_leases += grants
            self.stats.lease_expiries += grants
            self._failed[index] = self._failed.get(index, 0) + grants
            failed = self._failed[index]
            cell = self._cells[index]
            self._ready = [(nb, i) for nb, i in self._ready if i != index]
            if self._ctx.retry.allows(failed):
                wait = self._ctx.retry.wait_s(failed, token=cell.label)
                self.stats.retries += 1
                self.stats.backoff_wait_s += wait
                self._events.append(("retry", wait))
                self._ready.append((now + wait, index))
            else:
                failure = CellFailure(
                    label=cell.label,
                    error_type="LeaseExpiredError",
                    message=(f"lease expired {failed} times across "
                             f"coordinator restarts (retry budget spent "
                             f"before the crash)"),
                    attempts=failed,
                )
                self._commit_locked(index, (index, failure, 0.0, 0),
                                    origin="expired", adjust_attempts=False)

    def _dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "attach":
            return self._op_attach(str(message["worker"]))
        if op == "detach":
            return self._op_detach(str(message["worker"]))
        if op == "request":
            return self._op_request(str(message["worker"]))
        if op == "renew":
            return self._op_renew(str(message["lease"]))
        if op == "result":
            return self._op_result(str(message["lease"]),
                                   message["payload"])
        if op == "status":
            return {"op": "status", **self.snapshot()}
        return {"op": "error", "error": f"unknown op {op!r}"}

    # -- protocol ops --------------------------------------------------
    def _mark_seen_locked(self, worker: str) -> None:
        """Refresh a worker's liveness stamp.

        A worker we are not currently tracking -- never attached, or
        pruned as silent by :meth:`reap` -- counts as a (re-)attach,
        so attach/detach accounting stays exactly paired no matter how
        often a loaded host makes a live worker look dead.
        """
        if worker not in self._workers:
            self.stats.worker_attaches += 1
            self._ever_attached = True
        self._workers[worker] = time.monotonic()

    def _op_attach(self, worker: str) -> Dict[str, Any]:
        with self._lock:
            self._mark_seen_locked(worker)
        return {"op": "ok", "poll_s": self.poll_s,
                "lease_timeout_s": self.lease_timeout_s}

    def _op_detach(self, worker: str) -> Dict[str, Any]:
        with self._lock:
            if self._workers.pop(worker, None) is not None:
                self.stats.worker_detaches += 1
        return {"op": "ok"}

    def _op_request(self, worker: str) -> Dict[str, Any]:
        now = time.monotonic()
        with self._lock:
            self._mark_seen_locked(worker)
            self._reap_locked(now)
            grant = self._next_grant_locked(worker, now)
            if grant is not None:
                return grant
            if len(self._done) == len(self._cells):
                return {"op": "done"}
            return {"op": "idle", "wait_s": self.poll_s}

    def _op_renew(self, lease_id: str) -> Dict[str, Any]:
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return {"op": "ok", "ok": False}
            lease.deadline_monotonic = (time.monotonic()
                                        + self.lease_timeout_s)
            self._mark_seen_locked(lease.worker)
            self._journal_locked("lease_renew", {
                "lease": lease_id, "index": lease.index,
                "worker": lease.worker})
            return {"op": "ok", "ok": True}

    def _op_result(self, lease_id: str, payload: bytes) -> Dict[str, Any]:
        item = pickle.loads(payload)
        index = item[0]
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            worker = lease.worker if lease is not None else "unknown"
            committed = self._commit_locked(index, item, origin="remote")
            if committed:
                self.stats.remote_cells += 1
            if lease is not None:
                self._workers[worker] = time.monotonic()
        return {"op": "ok", "committed": committed}

    # -- core state transitions (all _locked) --------------------------
    def _next_grant_locked(self, worker: str,
                           now: float) -> Optional[Dict[str, Any]]:
        index = self._pop_ready_locked(now)
        steal = False
        if index is None:
            index = self._steal_candidate_locked(now)
            if index is None:
                return None
            steal = True
            self.stats.steals += 1
        lease = _Lease(
            lease_id=uuid.uuid4().hex,
            index=index,
            worker=worker,
            granted_monotonic=now,
            deadline_monotonic=now + self.lease_timeout_s,
            duplicate=steal,
        )
        self._leases[lease.lease_id] = lease
        self._active[index] = self._active.get(index, 0) + 1
        self.stats.leases_granted += 1
        # WAL: the grant is durable before the worker ever sees it, so
        # a coordinator crash can never lose track of in-flight work.
        # Duplicates (steals) are flagged: they are not a fresh
        # dispatch episode and recovery must not double-charge them.
        self._journal_locked("lease_grant", {
            "index": index, "lease": lease.lease_id, "worker": worker,
            "duplicate": steal})
        self._ctx.started(index)
        if self._chaos_duplicate_leases > 0 and not steal:
            # Chaos: leave the cell in the queue too, so another
            # worker is handed the same cell concurrently.
            self._chaos_duplicate_leases -= 1
            self._ready.append((now, index))
        ctx = self._ctx
        cell = self._cells[index]
        return {
            "op": "grant",
            "lease": lease.lease_id,
            "cell": pickle.dumps(cell, protocol=4),
            "lease_timeout_s": self.lease_timeout_s,
            "cell_timeout_s": ctx.cell_timeout_s,
            "ckpt_path": ctx.ckpts.get(index),
            "ckpt_every": ctx.checkpoint_every_steps,
            "stall_timeout_s": ctx.stall_timeout_s,
            "obs_enabled": ctx.obs_enabled,
        }

    def _pop_ready_locked(self, now: float) -> Optional[int]:
        """The first dispatchable queue entry (spec order among ready)."""
        for pos, (not_before, index) in enumerate(self._ready):
            if index in self._done:
                # Committed while a duplicate sat queued: drop it.
                self._ready.pop(pos)
                return self._pop_ready_locked(now)
            if not_before <= now:
                self._ready.pop(pos)
                return index
        return None

    def _steal_candidate_locked(self, now: float) -> Optional[int]:
        """The oldest lease past the steal age with no duplicate yet."""
        best: Optional[_Lease] = None
        for lease in self._leases.values():
            if lease.index in self._done:
                continue
            if now - lease.granted_monotonic < self.steal_after_s:
                continue
            if self._active.get(lease.index, 0) >= 2:
                continue  # already duplicated; don't pile on
            if best is None or lease.granted_monotonic < best.granted_monotonic:
                best = lease
        return best.index if best is not None else None

    def _reap_locked(self, now: float) -> None:
        """Reclaim expired leases; requeue or finally fail their cells."""
        expired = [lease for lease in self._leases.values()
                   if lease.deadline_monotonic < now]
        for lease in expired:
            self._leases.pop(lease.lease_id, None)
            index = lease.index
            self._active[index] = max(0, self._active.get(index, 0) - 1)
            if index in self._done:
                continue
            self.stats.lease_expiries += 1
            self._events.append(("expiry", 1.0))
            if self._active.get(index, 0) > 0:
                # A duplicate of this cell is still running; its own
                # fate decides the cell.
                continue
            self._failed[index] = self._failed.get(index, 0) + 1
            failed = self._failed[index]
            cell = self._cells[index]
            if self._ctx.retry.allows(failed):
                wait = self._ctx.retry.wait_s(failed, token=cell.label)
                self.stats.retries += 1
                self.stats.backoff_wait_s += wait
                self._events.append(("retry", wait))
                self._ready.append((now + wait, index))
            else:
                failure = CellFailure(
                    label=cell.label,
                    error_type="LeaseExpiredError",
                    message=(f"lease expired {failed} times (worker lost "
                             f"or stalled past {self.lease_timeout_s} s)"),
                    attempts=failed,
                )
                self._commit_locked(index, (index, failure, 0.0, 0),
                                    origin="expired", adjust_attempts=False)

    def _commit_locked(self, index: int, item: Tuple[int, Any, float, int],
                       origin: str, adjust_attempts: bool = True) -> bool:
        """Idempotently record a final outcome; True if it won."""
        if index not in self._cells:
            # After a coordinator restart this table holds only the
            # *pending* cells; a surviving worker re-delivering a cell
            # that was committed before the crash lands here.  Same
            # verdict as any duplicate: discarded, counted, harmless.
            self.stats.duplicate_results += 1
            return False
        if index in self._done:
            self.stats.duplicate_results += 1
            return False
        outcome = item[1]
        attempts = self._failed.get(index, 0)
        # A remotely-reported failure consumed one attempt on top of
        # the expired ones; an expiry-created failure already carries
        # its full count.
        if adjust_attempts and isinstance(outcome, CellFailure) and attempts:
            outcome = dataclasses.replace(outcome, attempts=attempts + 1)
            item = (item[0], outcome, item[2], item[3])
        self._done[index] = item
        self._origin[index] = origin
        # Every lease on this cell (steals, chaos duplicates) is now
        # moot; late results hit the duplicate branch above.
        for lease_id in [lid for lid, lease in self._leases.items()
                         if lease.index == index]:
            self._leases.pop(lease_id)
        self._active.pop(index, None)
        self._ctx.finalise(index, outcome)
        return True

    # -- executor-side API ---------------------------------------------
    def inject_duplicate_leases(self, n: int) -> None:
        """Chaos hook: duplicate-deliver the next ``n`` leases."""
        with self._lock:
            self._chaos_duplicate_leases += int(n)

    def reap(self) -> None:
        """Expire stale leases and prune silent workers (executor tick)."""
        now = time.monotonic()
        with self._lock:
            self._reap_locked(now)
            stale = [worker for worker, seen in self._workers.items()
                     if now - seen > self.worker_timeout_s]
            for worker in stale:
                self._workers.pop(worker, None)
                self.stats.worker_detaches += 1

    def claim_local(self) -> Optional[Tuple[str, Any]]:
        """Lease one ready cell to the in-process fallback executor."""
        now = time.monotonic()
        with self._lock:
            index = self._pop_ready_locked(now)
            if index is None:
                return None
            lease = _Lease(
                lease_id=uuid.uuid4().hex,
                index=index,
                worker="__local__",
                granted_monotonic=now,
                # The parent cannot SIGKILL itself out from under the
                # lease; a generous deadline keeps reap() honest anyway.
                deadline_monotonic=now + max(self.lease_timeout_s, 3600.0),
            )
            self._leases[lease.lease_id] = lease
            self._active[index] = self._active.get(index, 0) + 1
            self.stats.leases_granted += 1
            self._journal_locked("lease_grant", {
                "index": index, "lease": lease.lease_id,
                "worker": "__local__", "duplicate": False})
            self._ctx.started(index)
            return lease.lease_id, self._cells[index]

    def commit_local(self, lease_id: str,
                     item: Tuple[int, Any, float, int]) -> bool:
        with self._lock:
            self._leases.pop(lease_id, None)
            committed = self._commit_locked(item[0], item, origin="local")
            if committed:
                self.stats.local_fallback_cells += 1
            return committed

    def drain_events(self) -> List[Tuple[str, float]]:
        with self._lock:
            events, self._events = self._events, []
            return events

    @property
    def finished(self) -> bool:
        with self._lock:
            return len(self._done) == len(self._cells)

    @property
    def live_workers(self) -> int:
        with self._lock:
            return len(self._workers)

    @property
    def ever_attached(self) -> bool:
        with self._lock:
            return self._ever_attached

    def results(self) -> List[Tuple[int, Any, float, int]]:
        with self._lock:
            if len(self._done) != len(self._cells):
                raise RuntimeError(
                    f"coordinator has {len(self._done)}/{len(self._cells)} "
                    f"results")
            return [self._done[index] for index in self._order]

    def origins(self) -> Dict[int, str]:
        with self._lock:
            return dict(self._origin)

    def snapshot(self) -> Dict[str, Any]:
        self._sync_frame_stats()
        with self._lock:
            return {
                "cells": len(self._cells),
                "done": len(self._done),
                "ready": len(self._ready),
                "leases": len(self._leases),
                "workers": len(self._workers),
                "stats": self.stats.as_dict(),
            }


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
@dataclass
class WorkerStats:
    """What one worker did before the coordinator said ``done``."""

    cells: int = 0
    failures_reported: int = 0
    results_discarded: int = 0
    reconnects: int = 0
    #: Coordinator outages ridden out (unreachable past the per-call
    #: budget, then reachable again before the reconnect window closed).
    outages_survived: int = 0
    #: Successful re-attaches after an outage.
    reattaches: int = 0
    #: Computed results delivered only after riding out an outage --
    #: work a pre-failover worker would have thrown away by exiting.
    results_redelivered: int = 0


class _LeaseRenewer(threading.Thread):
    """Renews one lease on its own connection while a cell computes."""

    def __init__(self, address: Tuple[str, int], lease_id: str,
                 interval_s: float) -> None:
        super().__init__(name=f"lease-renew-{lease_id[:8]}", daemon=True)
        self._address = address
        self._lease_id = lease_id
        self._interval_s = max(0.05, interval_s)
        self._stop = threading.Event()

    def run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                reply = rpc(self._address,
                            {"op": "renew", "lease": self._lease_id},
                            timeout_s=5.0)
                if not reply.get("ok", False):
                    return  # lease reclaimed; stop renewing
            except (ConnectionError, OSError):
                continue  # transient partition: keep trying until told

    def stop(self) -> None:
        self._stop.set()


class SweepWorker:
    """One elastic worker process: attach, lease, compute, report, loop.

    Runs cells on its main thread, so the hard SIGALRM per-cell
    timeout applies exactly as in a local pool worker.  Connection
    loss inside one RPC is retried with the worker's own backoff;
    a coordinator unreachable past that budget raises
    :class:`CoordinatorUnreachableError` -- which the main loop treats
    as an *outage*, not as the sweep ending.  The worker then probes
    the address with seeded jittered backoff for up to
    ``reconnect_timeout_s`` (a coordinator SIGKILLed mid-sweep and
    restarted from its journal re-adopts its surviving fleet this
    way), re-attaches, and -- crucially -- re-delivers any result it
    had computed during the outage, so in-flight work survives the
    crash without recomputation.  Only an explicit ``done`` reply, or
    an outage that outlives the reconnect window, ends the worker.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        worker_id: Optional[str] = None,
        poll_s: float = 0.05,
        rpc_timeout_s: float = 10.0,
        retry: Optional[RetryPolicy] = None,
        reconnect_timeout_s: float = 30.0,
    ) -> None:
        self.address = address
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_s = poll_s
        self.rpc_timeout_s = rpc_timeout_s
        #: Connection retry schedule (not cell retries -- those are the
        #: coordinator's job).
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=8, backoff_base_s=0.05, backoff_factor=2.0,
            backoff_max_s=2.0, jitter=0.5, seed=hash(self.worker_id) & 0xffff)
        #: How long an attached worker keeps probing an unreachable
        #: coordinator before giving up on the sweep.
        self.reconnect_timeout_s = reconnect_timeout_s
        #: Jittered probe schedule during an outage; the seed derives
        #: from the worker id so a restarted coordinator's surviving
        #: fleet staggers its reconnects instead of thundering back in
        #: lockstep.
        self.reconnect_retry = RetryPolicy(
            max_attempts=1 << 30, backoff_base_s=0.1, backoff_factor=1.5,
            backoff_max_s=1.0, jitter=0.5,
            seed=hash(self.worker_id) & 0xffff)
        self.stats = WorkerStats()
        self._stop = threading.Event()

    def stop(self) -> None:
        """Ask the loop to exit after the current cell (detaches)."""
        self._stop.set()

    def _rpc(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """RPC with connection retries.

        Transient blips are absorbed by the retry schedule; a
        coordinator unreachable past the whole budget raises
        :class:`CoordinatorUnreachableError` so callers can tell "the
        host is down right now" from any protocol-level reply -- the
        two used to share a ``None`` return, which made a worker
        silently exit a live sweep on a long blip.
        """
        attempts = 0
        while True:
            try:
                return rpc(self.address, message,
                           timeout_s=self.rpc_timeout_s)
            except (ConnectionError, OSError) as exc:
                attempts += 1
                if not self.retry.allows(attempts):
                    raise CoordinatorUnreachableError(
                        f"coordinator {self.address[0]}:{self.address[1]} "
                        f"unreachable after {attempts} attempts "
                        f"({type(exc).__name__}: {exc})") from exc
                self.stats.reconnects += 1
                self.retry.sleep(attempts, token=message.get("op", ""))

    def _ride_out_outage(self) -> bool:
        """Probe an unreachable coordinator until it answers an attach.

        Returns True once re-attached (the caller resumes where it
        was), False when ``reconnect_timeout_s`` elapses or the worker
        was asked to stop -- only then is the sweep abandoned.
        """
        started = time.monotonic()
        attempt = 0
        while time.monotonic() - started < self.reconnect_timeout_s:
            if self._stop.is_set():
                return False
            attempt += 1
            # Cap the exponent so the schedule saturates at its
            # ceiling instead of overflowing on a long outage.
            self.reconnect_retry.sleep(min(attempt, 64),
                                       token="reconnect")
            try:
                rpc(self.address,
                    {"op": "attach", "worker": self.worker_id},
                    timeout_s=self.rpc_timeout_s)
            except (ConnectionError, OSError):
                continue
            self.stats.outages_survived += 1
            self.stats.reattaches += 1
            return True
        return False

    def run(self, max_cells: Optional[int] = None) -> WorkerStats:
        """Work until the coordinator reports the sweep done."""
        try:
            self._rpc({"op": "attach", "worker": self.worker_id})
        except CoordinatorUnreachableError:
            # Never managed to attach at all: nothing to ride out.
            return self.stats
        try:
            while not self._stop.is_set():
                if max_cells is not None and self.stats.cells >= max_cells:
                    break
                try:
                    reply = self._rpc({"op": "request",
                                       "worker": self.worker_id})
                except CoordinatorUnreachableError:
                    if not self._ride_out_outage():
                        break
                    continue
                if reply.get("op") == "done":
                    break
                if reply.get("op") == "idle":
                    time.sleep(float(reply.get("wait_s", self.poll_s)))
                    continue
                if reply.get("op") != "grant":
                    break
                self._execute_grant(reply)
        finally:
            try:
                self._rpc({"op": "detach", "worker": self.worker_id})
            except CoordinatorUnreachableError:
                pass
        return self.stats

    def _execute_grant(self, grant: Dict[str, Any]) -> None:
        cell = pickle.loads(grant["cell"])
        lease_id = grant["lease"]
        renewer = _LeaseRenewer(
            self.address, lease_id,
            interval_s=float(grant["lease_timeout_s"]) / 3.0)
        renewer.start()
        try:
            item = timed_cell(
                cell,
                grant.get("cell_timeout_s"),
                grant.get("ckpt_path"),
                int(grant.get("ckpt_every") or 0),
                grant.get("stall_timeout_s"),
                obs_enabled=bool(grant.get("obs_enabled")),
            )
        finally:
            renewer.stop()
        if isinstance(item[1], CellFailure):
            self.stats.failures_reported += 1
        # Deliver the result across outages: a coordinator that died
        # while this cell computed is restarting from its journal, and
        # this exact payload is what spares it the recomputation.  The
        # restarted coordinator commits by cell index, so an unknown
        # lease id is fine -- first commit wins, duplicates are
        # discarded, exactly as within one run.
        redelivery = False
        while True:
            try:
                reply = self._rpc({
                    "op": "result",
                    "lease": lease_id,
                    "worker": self.worker_id,
                    "payload": pickle.dumps(item, protocol=4),
                })
                break
            except CoordinatorUnreachableError:
                if not self._ride_out_outage():
                    return  # result undeliverable; the lease expires
                redelivery = True
        if redelivery:
            self.stats.results_redelivered += 1
        self.stats.cells += 1
        if not reply.get("committed", False):
            self.stats.results_discarded += 1


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------
class DistributedExecutor(SweepExecutor):
    """Sweep backend that coordinates networked lease workers.

    Parameters
    ----------
    host / port:
        Bind address of the coordinator (port 0 picks a free one; the
        bound port is on :attr:`coordinator` and in the heartbeat).
    lease_timeout_s:
        Lease deadline; workers renew at a third of this, so worker
        loss is detected within one lease timeout of the last renewal.
    steal_after_s:
        Age after which an outstanding lease may be duplicated by an
        idle worker (default: half the lease timeout).
    spawn_workers:
        Convenience: launch this many local worker subprocesses for
        the duration of each sweep (their PIDs are on
        :meth:`worker_pids` -- the chaos harness kills them).
    workers_grace_s:
        How long to wait for at least one worker before degrading to
        in-process execution (when ``local_fallback``).
    local_fallback:
        When True (default) the parent's own process executes ready
        cells whenever no live workers exist past the grace period --
        an empty or fully-dead cluster degrades to exactly the serial
        path instead of hanging.
    max_connections / read_deadline_s:
        Coordinator admission cap and per-connection read deadline
        (see :class:`FrameServer`).
    max_wall_s:
        Optional hard ceiling on one sweep; on expiry the remaining
        cells fail as ``DistributedTimeoutError`` CellFailures
        (only reachable with ``local_fallback=False``).
    """

    name = "distributed"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout_s: float = 30.0,
        steal_after_s: Optional[float] = None,
        spawn_workers: int = 0,
        workers_grace_s: float = 2.0,
        local_fallback: bool = True,
        poll_s: float = 0.02,
        max_connections: int = 64,
        read_deadline_s: float = 10.0,
        max_wall_s: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self.lease_timeout_s = lease_timeout_s
        self.steal_after_s = steal_after_s
        self.spawn_workers = spawn_workers
        self.workers_grace_s = workers_grace_s
        self.local_fallback = local_fallback
        self.poll_s = poll_s
        self.max_connections = max_connections
        self.read_deadline_s = read_deadline_s
        self.max_wall_s = max_wall_s
        self.coordinator: Optional[SweepCoordinator] = None
        self.stats: DistStats = DistStats()
        self._procs: List[subprocess.Popen] = []
        self._blobs: List[obs.RunTelemetry] = []
        #: Chaos request carried into the next run's coordinator.
        self._pending_duplicate_leases = 0

    # -- chaos hooks ---------------------------------------------------
    def inject_duplicate_leases(self, n: int) -> None:
        """Duplicate-deliver the next ``n`` leases (live or queued)."""
        if self.coordinator is not None:
            self.coordinator.inject_duplicate_leases(n)
        else:
            self._pending_duplicate_leases += int(n)

    def worker_pids(self) -> List[int]:
        """PIDs of the spawned worker subprocesses still running."""
        return [proc.pid for proc in self._procs if proc.poll() is None]

    # -- SweepExecutor -------------------------------------------------
    def run(self, cells: Sequence[Any]) -> List[Tuple[int, Any, float, int]]:
        ctx = self.ctx
        coordinator = SweepCoordinator(
            cells, ctx, host=self.host, port=self.port,
            lease_timeout_s=self.lease_timeout_s,
            steal_after_s=self.steal_after_s,
            max_connections=self.max_connections,
            read_deadline_s=self.read_deadline_s,
        )
        if self._pending_duplicate_leases:
            coordinator.inject_duplicate_leases(
                self._pending_duplicate_leases)
            self._pending_duplicate_leases = 0
        self.coordinator = coordinator
        self._blobs = []
        coordinator.start()
        started = time.monotonic()
        try:
            self._spawn_local_workers(coordinator.address)
            while not coordinator.finished:
                coordinator.reap()
                self._drain_events(ctx)
                if self.max_wall_s is not None \
                        and time.monotonic() - started > self.max_wall_s:
                    self._fail_remaining(coordinator)
                    break
                if self._should_fall_back(coordinator, started):
                    claimed = coordinator.claim_local()
                    if claimed is not None:
                        lease_id, cell = claimed
                        item = timed_cell(
                            cell, ctx.cell_timeout_s,
                            ctx.ckpts.get(cell.index),
                            ctx.checkpoint_every_steps,
                            ctx.stall_timeout_s)
                        coordinator.commit_local(lease_id, item)
                        continue
                time.sleep(self.poll_s)
            self._drain_events(ctx)
            items = coordinator.results()
            if ctx.obs_enabled:
                origins = coordinator.origins()
                for item in items:
                    if origins.get(item[0]) != "remote":
                        continue
                    blob = getattr(item[1], "telemetry", None)
                    if blob is not None:
                        self._blobs.append(blob)
            self._done = len(items)
            coordinator._sync_frame_stats()
            self.stats = coordinator.stats
            self._export_counters()
            return items
        finally:
            self._reap_local_workers()
            coordinator.stop()

    def heartbeat(self) -> ExecutorHeartbeat:
        coordinator = self.coordinator
        if coordinator is None:
            return ExecutorHeartbeat(backend=self.name,
                                     at_monotonic=time.monotonic())
        snap = coordinator.snapshot()
        return ExecutorHeartbeat(
            backend=self.name,
            at_monotonic=time.monotonic(),
            workers=snap["workers"],
            done=snap["done"],
            in_flight=snap["leases"],
            detail={"ready": float(snap["ready"]),
                    "port": float(coordinator.port),
                    **{k: float(v) for k, v in snap["stats"].items()}},
        )

    def remote_blobs(self) -> List[obs.RunTelemetry]:
        blobs, self._blobs = self._blobs, []
        return blobs

    # -- internals -----------------------------------------------------
    def _should_fall_back(self, coordinator: SweepCoordinator,
                          started: float) -> bool:
        if not self.local_fallback:
            return False
        if coordinator.live_workers > 0:
            return False
        grace = self.workers_grace_s
        if coordinator.ever_attached:
            # Workers existed and all went away: degrade immediately
            # once their leases have been reaped.
            return True
        return time.monotonic() - started >= grace

    def _fail_remaining(self, coordinator: SweepCoordinator) -> None:
        while True:
            claimed = coordinator.claim_local()
            if claimed is None:
                break
            lease_id, cell = claimed
            failure = CellFailure(
                label=cell.label,
                error_type="DistributedTimeoutError",
                message=f"sweep exceeded max_wall_s={self.max_wall_s}",
            )
            coordinator.commit_local(lease_id,
                                     (cell.index, failure, 0.0, 0))

    def _drain_events(self, ctx: ExecutionContext) -> None:
        coordinator = self.coordinator
        if coordinator is None:
            return
        for kind, value in coordinator.drain_events():
            if kind == "retry":
                ctx.count_retry(value)

    def _export_counters(self) -> None:
        ob = obs.session()
        if ob is None:
            return
        reg = ob.registry
        for name, value in self.stats.as_dict().items():
            if value:
                reg.counter(f"dist.{name}").inc(value)

    def _spawn_local_workers(self, address: Tuple[str, int]) -> None:
        if not self.spawn_workers:
            return
        host, port = address
        env = dict(os.environ)
        src_root = _repro_src_root()
        env["PYTHONPATH"] = (src_root + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src_root)
        for _ in range(self.spawn_workers):
            self._procs.append(subprocess.Popen(
                [sys.executable, "-m", "repro.sim.distributed", "worker",
                 "--connect", f"{host}:{port}"],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            ))

    def _reap_local_workers(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5.0)
        self._procs = []


def _repro_src_root() -> str:
    """The sys.path root that makes ``import repro`` work in workers."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_address(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.sim.distributed worker --connect HOST:PORT``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.sim.distributed",
        description="Distributed sweep protocol endpoints")
    sub = parser.add_subparsers(dest="command", required=True)
    worker = sub.add_parser(
        "worker", help="attach to a coordinator and execute leased cells")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address")
    worker.add_argument("--id", default=None, help="worker identity")
    worker.add_argument("--max-cells", type=int, default=None,
                        help="exit after this many cells (default: run "
                             "until the sweep completes)")
    worker.add_argument("--reconnect-timeout", type=float, default=30.0,
                        help="seconds to keep retrying an unreachable "
                             "coordinator before giving up (default: 30)")
    status = sub.add_parser("status", help="print a coordinator snapshot")
    status.add_argument("--connect", required=True, metavar="HOST:PORT")
    args = parser.parse_args(argv)

    address = _parse_address(args.connect)
    if args.command == "worker":
        stats = SweepWorker(
            address, worker_id=args.id,
            reconnect_timeout_s=args.reconnect_timeout,
        ).run(max_cells=args.max_cells)
        print(f"worker done: {stats.cells} cells "
              f"({stats.failures_reported} failures, "
              f"{stats.results_discarded} discarded duplicates, "
              f"{stats.reconnects} reconnects)")
        return 0
    reply = rpc(address, {"op": "status", "worker": "cli"})
    for key, value in reply.items():
        if key != "op":
            print(f"{key}: {value}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
