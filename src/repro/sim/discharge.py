"""The one-discharge-cycle experiment (paper Figure 12's harness).

``run_discharge_cycle`` replays a workload trace on a phone until the
battery pack can no longer serve demand, letting a scheduling policy
choose the battery each control step and a thermostat drive the TEC.
The returned :class:`DischargeResult` carries everything the paper's
evaluation figures plot: service time, energy, SoC / temperature /
power traces, switch counts and battery activation ratios.
"""

from __future__ import annotations

import abc
import hashlib
import pickle
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .. import obs
from ..battery.pack import BatteryPack, BigLittlePack
from ..battery.switch import BatterySelection
from ..device.phone import DemandSlice, Phone, StepOutcome
from ..device.profiles import NEXUS, PhoneProfile
from ..device.syscalls import Syscall
from ..durability.budget import (
    BudgetExceededError,
    Heartbeat,
    HeartbeatWatchdog,
    RunBudget,
    retire_on_stall,
)
from ..durability.deadline import poll_deadline
from ..durability.snapshot import Checkpointer, SimCheckpoint
from ..durability.state import StateMismatchError, pack_state, unpack_state
from ..thermal.hotspot import HOT_SPOT_THRESHOLD_C, ThermostatController
from ..thermal.tec import TECUnit
from ..workload.traces import Trace
from .engine import iter_control_steps
from .metrics import MetricsRecorder

__all__ = [
    "PolicyContext",
    "SchedulingPolicy",
    "DischargeResult",
    "run_discharge_cycle",
    "trace_fingerprint",
]


@dataclass(frozen=True)
class PolicyContext:
    """Everything a scheduling policy may observe at a decision point."""

    now_s: float
    demand: DemandSlice
    #: The system call opening this segment (None mid-segment).
    syscall: Optional[Syscall]
    #: The phone's estimate of upcoming electrical demand (W).
    predicted_power_w: float
    cpu_temp_c: float
    surface_temp_c: float
    #: SoCs; for single packs both carry the lone cell's SoC.
    soc_big: float
    soc_little: float
    active: BatterySelection
    #: True on the first control step of a workload segment.
    segment_start: bool


class SchedulingPolicy(abc.ABC):
    """A battery-scheduling policy under evaluation.

    Subclasses supply the pack they run on (so ``Practice`` can use a
    single battery), whether they operate a TEC, and the per-step
    battery decision.
    """

    name: str = "policy"
    #: Whether the harness runs the 45 degC thermostat + TEC for us.
    uses_tec: bool = False

    @abc.abstractmethod
    def build_pack(self) -> BatteryPack:
        """A fresh pack for a new discharge cycle."""

    def on_cycle_start(self, trace: Trace, phone: Phone) -> None:
        """Hook before the first step (Oracle studies the trace here)."""

    @abc.abstractmethod
    def decide_battery(self, ctx: PolicyContext) -> Optional[BatterySelection]:
        """The battery to use next; None keeps the current selection."""

    def filter_demand(self, demand: DemandSlice, ctx: PolicyContext) -> DemandSlice:
        """Optionally rewrite the demand before it hits the plant.

        The default is the identity; a supervised policy in thermal
        fallback overrides this to frequency-throttle the workload.
        The harness only calls the hook when it is overridden, so
        ordinary policies pay nothing.
        """
        return demand

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Default: pickle the whole instance ``__dict__``.

        Works for any policy whose attributes are plain data (the
        CAPMAN controller, the baselines, Oracle's trace digest).
        Policies holding live plant references (the supervised wrapper)
        must override with a hand-picked payload.
        """
        blob = pickle.dumps(self.__dict__, protocol=4)
        return pack_state(self, self._STATE_VERSION, {"pickle": blob})

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place (identity preserved)."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self.__dict__.update(pickle.loads(payload["pickle"]))


@dataclass
class DischargeResult:
    """Measured outcome of one discharge cycle."""

    policy_name: str
    workload_name: str
    #: How long the phone kept serving demand (s) -- the headline metric.
    service_time_s: float
    #: Total energy delivered to the load (J).
    energy_delivered_j: float
    #: Battery switch events committed.
    switch_count: int
    #: Activation time per battery (s).
    big_time_s: float
    little_time_s: float
    #: TEC bookkeeping.
    tec_on_time_s: float
    tec_energy_j: float
    #: Thermal summary.
    max_cpu_temp_c: float
    time_above_threshold_s: float
    #: Recorded traces (downsampled): soc, cpu_temp, power, voltage.
    metrics: MetricsRecorder = field(repr=False, default_factory=MetricsRecorder)
    #: Control steps executed (throughput accounting).
    step_count: int = 0
    #: Wall-clock time spent inside the cycle loop (s).
    wall_time_s: float = 0.0
    #: Structured fault/recovery events (supervised policies only).
    fault_events: Tuple = ()
    #: Degraded mode at end of cycle ("normal" when unsupervised).
    final_mode: str = "normal"
    #: Degraded-mode transitions over the cycle.
    mode_transitions: int = 0
    #: Observability blob (populated only while ``obs`` is enabled).
    #: Out-of-band of the simulated outcome: excluded from equality and
    #: repr, stripped by :func:`repro.obs.invisible_view`.
    telemetry: Optional[obs.RunTelemetry] = field(
        default=None, repr=False, compare=False)

    @property
    def mean_power_w(self) -> float:
        """Average delivered power over the cycle (W)."""
        if self.service_time_s <= 0:
            return 0.0
        return self.energy_delivered_j / self.service_time_s

    @property
    def little_ratio(self) -> float:
        """LITTLE activation share of total battery time (Figure 14 x-axis)."""
        total = self.big_time_s + self.little_time_s
        return self.little_time_s / total if total > 0 else 0.0


def trace_fingerprint(trace: Trace) -> str:
    """A content hash of a trace's segments (for checkpoint matching).

    Segments are frozen dataclasses with deterministic ``repr``, so the
    digest identifies the exact demand sequence without pulling the
    sweep engine's canonicaliser into this layer.
    """
    h = hashlib.sha256()
    for seg in trace:
        h.update(repr((seg.demand, seg.duration_s, seg.syscall)).encode())
    return h.hexdigest()[:16]


def _cycle_fingerprint(policy, trace, profile, control_dt, max_duration_s,
                       ambient_c, tec_threshold_c, record_every,
                       brownout_limit) -> str:
    """Fingerprint of everything that must match for a resume."""
    data = (
        type(policy).__qualname__, policy.name,
        trace.name, trace_fingerprint(trace),
        getattr(profile, "name", repr(profile)),
        control_dt, max_duration_s, ambient_c, tec_threshold_c,
        record_every, brownout_limit,
    )
    return hashlib.sha256(repr(data).encode()).hexdigest()[:16]


def run_discharge_cycle(
    policy: SchedulingPolicy,
    trace: Trace,
    profile: PhoneProfile = NEXUS,
    control_dt: float = 1.0,
    max_duration_s: float = 3.0 * 3600.0,
    ambient_c: float = 25.0,
    tec_threshold_c: float = HOT_SPOT_THRESHOLD_C,
    record_every: int = 1,
    brownout_limit: int = 3,
    checkpointer: Optional[Checkpointer] = None,
    resume_from: Optional[SimCheckpoint] = None,
    budget: Optional[RunBudget] = None,
    stall_timeout_s: Optional[float] = None,
) -> DischargeResult:
    """Drive one full discharge cycle of ``policy`` over ``trace``.

    The trace loops until the pack can no longer serve demand or
    ``max_duration_s`` elapses.  A *brownout* is a control step whose
    delivered energy falls measurably short of demand (the supply rail
    collapsed mid-step); after ``brownout_limit`` brownouts the phone
    is dead and the cycle ends -- a pack cannot inflate its service
    time by limping along on partial service.  ``record_every`` thins
    metric recording for long runs.

    Durability (all optional, all off by default):

    * ``checkpointer`` saves a full-state :class:`SimCheckpoint` every
      ``every_steps`` control steps.
    * ``resume_from`` restores such a checkpoint and continues; the
      run configuration must fingerprint-match the one that produced
      it, and the continued run is bit-identical to the uninterrupted
      one.
    * ``budget`` is polled at the top of each step (a consistent state
      point); blowing it raises :class:`BudgetExceededError` carrying
      a final clean checkpoint instead of dying to a timeout kill.
    * ``stall_timeout_s`` arms a heartbeat watchdog that flushes the
      latest checkpoint and force-expires this thread's cooperative
      deadline when the loop stops beating.
    """
    wall_start = time.perf_counter()
    # Observability: hoist the session check to one local boolean so the
    # disabled (default) path costs a single truth test per guard and
    # performs zero registry/tracer calls in the step loop.
    ob = obs.session()
    observing = ob is not None
    if observing:
        scope = ob.scope("discharge", f"{policy.name}:{trace.name}")
        cycle_span = ob.tracer.start("discharge", policy=policy.name,
                                     trace=trace.name)
        _obs_clock = time.monotonic
        _obs_step = scope.registry.histogram("sim.step_wall_s").observe
    pack = policy.build_pack()
    phone = Phone(profile=profile, pack=pack, ambient_c=ambient_c)
    thermostat = ThermostatController(threshold_c=tec_threshold_c)
    metrics = MetricsRecorder()
    policy.on_cycle_start(trace, phone)

    def looped_segments():
        while True:
            for seg in trace:
                yield seg

    service_time = 0.0
    energy = 0.0
    big_time = 0.0
    little_time = 0.0
    hot_time = 0.0
    max_temp = ambient_c
    step_index = 0
    brownouts = 0

    durable = (checkpointer is not None or resume_from is not None
               or budget is not None or stall_timeout_s is not None)
    fingerprint = ""
    if durable:
        fingerprint = _cycle_fingerprint(
            policy, trace, profile, control_dt, max_duration_s, ambient_c,
            tec_threshold_c, record_every, brownout_limit)

    def _make_checkpoint() -> SimCheckpoint:
        return SimCheckpoint.create("discharge", {
            "fingerprint": fingerprint,
            "step_index": step_index,
            "service_time": service_time,
            "energy": energy,
            "big_time": big_time,
            "little_time": little_time,
            "hot_time": hot_time,
            "max_temp": max_temp,
            "brownouts": brownouts,
            "policy": policy.state_dict(),
            "phone": phone.state_dict(),
            "thermostat": thermostat.state_dict(),
            "metrics": metrics.state_dict(),
        })

    if resume_from is not None:
        resume_from.verify()
        if resume_from.kind != "discharge":
            raise StateMismatchError(
                f"checkpoint kind {resume_from.kind!r} is not a discharge "
                f"checkpoint")
        saved = resume_from.payload
        if saved["fingerprint"] != fingerprint:
            raise StateMismatchError(
                "checkpoint was taken under a different run configuration "
                f"({saved['fingerprint']} vs {fingerprint})")
        # Restore order matters: the policy first (on_cycle_start has
        # already rewired any fault plumbing it owns), then the plant.
        policy.load_state_dict(saved["policy"])
        phone.load_state_dict(saved["phone"])
        thermostat.load_state_dict(saved["thermostat"])
        metrics.load_state_dict(saved["metrics"])
        service_time = saved["service_time"]
        energy = saved["energy"]
        big_time = saved["big_time"]
        little_time = saved["little_time"]
        hot_time = saved["hot_time"]
        max_temp = saved["max_temp"]
        brownouts = saved["brownouts"]
        step_index = saved["step_index"]
        if budget is not None:
            budget.restart()  # fresh wall budget; steps carry over
    resume_step0 = step_index

    # Hot-loop hoists: bind per-step callables and constants once.  A
    # day-long trace at 1 s steps runs this loop ~10^5 times, and the
    # attribute chains below would otherwise be re-resolved each step.
    predict_power = phone.demand_power_w
    decide = policy.decide_battery
    uses_tec = policy.uses_tec
    select_battery = phone.select_battery
    set_tec = phone.set_tec
    thermostat_update = thermostat.update
    phone_step = phone.step
    filter_demand = (
        policy.filter_demand
        if type(policy).filter_demand is not SchedulingPolicy.filter_demand
        else None
    )
    record = metrics.record
    thermal_temperature = phone.thermal.temperature
    big_sel = BatterySelection.BIG
    little_sel = BatterySelection.LITTLE
    dual = isinstance(pack, BigLittlePack)
    if dual:
        big_cell, little_cell = pack.big, pack.little
        active_of = lambda: pack.active

    steps = iter_control_steps(looped_segments(), control_dt, max_duration_s)
    if step_index:
        # Fast-forward the pure slicing iterator past the completed
        # steps; no physics runs here, so this is cheap and exact.
        for _ in range(step_index):
            if next(steps, None) is None:
                break

    heartbeat: Optional[Heartbeat] = None
    watchdog: Optional[HeartbeatWatchdog] = None
    if stall_timeout_s is not None:
        heartbeat = Heartbeat()
        watchdog = HeartbeatWatchdog(
            heartbeat, stall_timeout_s,
            retire_on_stall(checkpointer, threading.get_ident(),
                            label=f"cycle[{policy.name}]")).start()

    telemetry: Optional[obs.RunTelemetry] = None
    try:
        for step in steps:
            if observing:
                _step_t0 = _obs_clock()
            # Durability hooks live at the top of the step, where the
            # state is consistent (== the end of the previous step).
            poll_deadline()
            if durable:
                if heartbeat is not None:
                    heartbeat.beat()
                if budget is not None:
                    reason = budget.exceeded(step_index)
                    if reason is not None:
                        ckpt = _make_checkpoint()
                        if checkpointer is not None:
                            checkpointer.save(ckpt)
                        raise BudgetExceededError(reason, ckpt)
                if checkpointer is not None and checkpointer.due(step_index):
                    checkpointer.save(_make_checkpoint())

            demand = step.segment.demand
            if dual:
                soc_big = big_cell.state_of_charge
                soc_little = little_cell.state_of_charge
                active = active_of() or big_sel
            else:
                soc_big = soc_little = pack.state_of_charge
                active = big_sel
            cpu_temp = thermal_temperature("cpu")
            ctx = PolicyContext(
                now_s=step.start_s,
                demand=demand,
                syscall=step.syscall,
                predicted_power_w=predict_power(demand),
                cpu_temp_c=cpu_temp,
                surface_temp_c=thermal_temperature("surface"),
                soc_big=soc_big,
                soc_little=soc_little,
                active=active,
                segment_start=step.segment_start,
            )

            choice = decide(ctx)
            if choice is not None:
                select_battery(choice)
            if uses_tec:
                set_tec(thermostat_update(cpu_temp, step.start_s))
            if filter_demand is not None:
                demand = filter_demand(demand, ctx)

            outcome: StepOutcome = phone_step(demand, step.dt)

            energy += outcome.energy_j
            if outcome.served_by is big_sel:
                big_time += step.dt
            elif outcome.served_by is little_sel:
                little_time += step.dt
            if outcome.cpu_temp_c > max_temp:
                max_temp = outcome.cpu_temp_c
            if outcome.cpu_temp_c >= tec_threshold_c:
                hot_time += step.dt

            step_index += 1
            if observing:
                _obs_step(_obs_clock() - _step_t0)
            if step_index % record_every == 0:
                t = step.start_s + step.dt
                record("soc", t, pack.state_of_charge)
                record("cpu_temp_c", t, outcome.cpu_temp_c)
                record("power_w", t, outcome.demand_w)
                record("voltage_v", t, outcome.voltage_v)

            service_time = step.start_s + step.dt
            if outcome.shortfall and pack.depleted:
                break
            demanded_j = outcome.demand_w * step.dt
            if demanded_j > 0 and outcome.energy_j < demanded_j * 0.98:
                brownouts += 1
                if brownouts >= brownout_limit:
                    break
    finally:
        if watchdog is not None:
            watchdog.stop()
        # Harvest telemetry in the finally so a budget/deadline abort
        # still closes the scope (keeping the session stack sound) and
        # the success path below sees ``telemetry`` already bound.
        if observing:
            cycle_span.annotate(steps=step_index)
            cycle_span.finish()
            reg = scope.registry
            reg.counter("sim.steps").inc(step_index - resume_step0)
            if brownouts:
                reg.counter("sim.brownouts").inc(brownouts)
            reg.gauge("sim.max_cpu_temp_c").set(max_temp)
            telemetry = scope.telemetry()
            scope.close()
            ob.export_telemetry(telemetry)

    switch_count = pack.switch.switch_count if dual else 0
    tec: TECUnit = phone.tec
    fault_events: Tuple = ()
    final_mode = "normal"
    mode_transitions = 0
    reporter = getattr(policy, "fault_report", None)
    if callable(reporter):
        report = reporter()
        fault_events = tuple(report.get("events", ()))
        final_mode = str(report.get("mode", "normal"))
        mode_transitions = int(report.get("mode_transitions", 0))
    return DischargeResult(
        policy_name=policy.name,
        workload_name=trace.name,
        service_time_s=service_time,
        energy_delivered_j=energy,
        switch_count=switch_count,
        big_time_s=big_time,
        little_time_s=little_time,
        tec_on_time_s=tec.on_time_s,
        tec_energy_j=tec.energy_used_j,
        max_cpu_temp_c=max_temp,
        time_above_threshold_s=hot_time,
        metrics=metrics,
        step_count=step_index,
        wall_time_s=time.perf_counter() - wall_start,
        fault_events=fault_events,
        final_mode=final_mode,
        mode_transitions=mode_transitions,
        telemetry=telemetry,
    )


def _pack_socs(pack: BatteryPack) -> Tuple[float, float]:
    if isinstance(pack, BigLittlePack):
        return pack.big.state_of_charge, pack.little.state_of_charge
    soc = pack.state_of_charge
    return soc, soc
