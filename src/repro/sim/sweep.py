"""Parallel scenario-sweep engine for the evaluation grids.

The paper's whole evaluation surface -- Figures 12-15, the daily-wear
extension and the headline numbers -- is a grid of scenarios: policies
x traces x phone profiles (x control step x ambient), each cell one
independent discharge cycle (or multi-day run).  This module turns
that implicit pattern into an explicit engine:

* :class:`SweepSpec` declares the grid and expands it into
  :class:`ScenarioCell` rows in a deterministic order;
* :class:`ScenarioRunner` executes the cells -- serially or fanned out
  over a ``ProcessPoolExecutor`` -- with results returned in spec
  order, so parallel output is identical to serial output;
* an optional on-disk cache keyed by a content hash of the scenario
  configuration plus a code-version salt lets a re-run recompute only
  the cells whose inputs actually changed;
* :class:`SimStats` reports throughput (control steps/s), per-phase
  wall times and cache hit/miss counts next to the results;
* failures are contained per cell: a raising cell (or one that blows
  its per-cell timeout) comes back as a :class:`CellFailure` carrying
  the traceback, and a killed worker (``BrokenProcessPool``) triggers
  bounded retries in isolated single-cell pools -- the rest of the
  grid always completes, and failed cells are never cached;
* an optional write-ahead run journal
  (:class:`~repro.durability.journal.RunJournal`) makes the sweep
  itself crash-durable: every cell start and every committed result is
  an fsync'd record, long cells checkpoint mid-flight into sidecar
  files, and :meth:`ScenarioRunner.resume` continues a SIGKILL'd sweep
  without recomputing a single committed cell.

Every scenario cell is pure: it builds its own policy copy, pack and
phone, so cells never share mutable state.  That is what makes the
fan-out safe and the cache sound.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..device.profiles import NEXUS, PhoneProfile
from ..durability.journal import JournalError, RunJournal, decode_blob, encode_blob
from ..durability.lock import FileLock
from ..workload.traces import Trace
from .daily import MultiDayResult
from .discharge import DischargeResult, SchedulingPolicy
from .executors import (CellFailure, CellTimeoutError, ExecutionContext,
                        LocalProcessExecutor, SweepExecutor,
                        choose_timeout_mechanism, timed_cell)
from .retry import RetryPolicy

__all__ = [
    "ScenarioCell",
    "SweepSpec",
    "SimStats",
    "SweepProgress",
    "SweepResult",
    "SweepCache",
    "ScenarioRunner",
    "CellFailure",
    "CellTimeoutError",
    "RetryPolicy",
]

#: Result type of a single scenario cell.
CellResult = Union[DischargeResult, MultiDayResult]

#: What a result slot can hold once failures are contained per cell.
CellOutcome = Union[DischargeResult, MultiDayResult, CellFailure]

#: Backward-compatible alias (the implementation moved to executors).
_timed_cell = timed_cell


# ----------------------------------------------------------------------
# Spec and cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioCell:
    """One fully specified, independently runnable scenario."""

    #: Position in the expanded spec (also the result index).
    index: int
    policy_key: str
    trace_key: str
    profile_key: str
    control_dt: float
    ambient_c: float
    #: "discharge" for one cycle, "daily" for a multi-day run.
    kind: str
    policy: SchedulingPolicy = field(repr=False)
    trace: Trace = field(repr=False)
    profile: PhoneProfile = field(repr=False)
    max_duration_s: float = 3.0 * 3600.0
    record_every: int = 1
    #: Extra keyword arguments for the run (e.g. daily: n_days, aging).
    extra: Tuple[Tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        """Human-readable cell identifier."""
        return (f"{self.policy_key}/{self.trace_key}/{self.profile_key}"
                f"/dt={self.control_dt}/amb={self.ambient_c}")


@dataclass
class SweepSpec:
    """A declarative scenario grid.

    The cross product ``policies x traces x profiles x control_dts x
    ambients_c`` is expanded in that key order (insertion order of the
    mappings, then sequence order), which fixes the cell indices and
    thereby the result ordering for any worker count.

    Parameters
    ----------
    policies / traces / profiles:
        Named axes; every combination becomes a cell.  Policies are
        treated as templates -- each cell runs on its own deep copy,
        so a spec may reuse one policy object across many cells.
    control_dts / ambients_c:
        Numeric axes (control step seconds, ambient degC).
    kind:
        "discharge" runs :func:`run_discharge_cycle` per cell;
        "daily" runs :func:`~repro.sim.daily.run_days`.
    max_duration_s / record_every:
        Forwarded to the discharge harness ("daily" maps
        ``max_duration_s`` onto ``max_cycle_s``).
    extra:
        Additional keyword arguments for the run function (for
        "daily": ``n_days``, ``aging``, ``charger``).
    """

    policies: Mapping[str, SchedulingPolicy]
    traces: Mapping[str, Trace]
    profiles: Mapping[str, PhoneProfile] = field(
        default_factory=lambda: {"Nexus": NEXUS})
    control_dts: Sequence[float] = (2.0,)
    ambients_c: Sequence[float] = (25.0,)
    kind: str = "discharge"
    max_duration_s: float = 3.0 * 3600.0
    record_every: int = 1
    extra: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.policies or not self.traces or not self.profiles:
            raise ValueError("policies, traces and profiles must be non-empty")
        if self.kind not in ("discharge", "daily"):
            raise ValueError(f"unknown sweep kind {self.kind!r}")
        if any(dt <= 0 for dt in self.control_dts):
            raise ValueError("control_dts must be positive")

    def expand(self) -> List[ScenarioCell]:
        """The grid as an ordered list of cells."""
        cells: List[ScenarioCell] = []
        extra = tuple(sorted(self.extra.items()))
        index = 0
        for policy_key, policy in self.policies.items():
            for trace_key, trace in self.traces.items():
                for profile_key, profile in self.profiles.items():
                    for control_dt in self.control_dts:
                        for ambient in self.ambients_c:
                            cells.append(ScenarioCell(
                                index=index,
                                policy_key=policy_key,
                                trace_key=trace_key,
                                profile_key=profile_key,
                                control_dt=float(control_dt),
                                ambient_c=float(ambient),
                                kind=self.kind,
                                policy=policy,
                                trace=trace,
                                profile=profile,
                                max_duration_s=self.max_duration_s,
                                record_every=self.record_every,
                                extra=extra,
                            ))
                            index += 1
        return cells

    def __len__(self) -> int:
        return (len(self.policies) * len(self.traces) * len(self.profiles)
                * len(self.control_dts) * len(self.ambients_c))


# ----------------------------------------------------------------------
# Content hashing (cache keys)
# ----------------------------------------------------------------------
_CODE_SALT: Optional[str] = None


def code_salt() -> str:
    """A digest of the installed ``repro`` sources.

    Folded into every cache key so that editing the simulator (or any
    model it drives) invalidates previously cached results instead of
    silently serving stale ones.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).resolve().parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(path.read_bytes())
        _CODE_SALT = digest.hexdigest()[:16]
    return _CODE_SALT


def _canonical(obj: Any) -> Any:
    """A stable, hashable description of a scenario component.

    Dataclasses describe themselves by class name plus their init
    fields (recursively), so any constructor parameter change -- a
    policy threshold, a profile power table entry, a trace segment --
    changes the key.  Private/runtime-only fields (``init=False``) are
    excluded: they are derived state, not configuration.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        fields = [
            (f.name, _canonical(getattr(obj, f.name)))
            for f in dataclasses.fields(cls) if f.init
        ]
        return (f"{cls.__module__}.{cls.__qualname__}", tuple(fields))
    if isinstance(obj, dict):
        items = [(_canonical(k), _canonical(v)) for k, v in obj.items()]
        return tuple(sorted(items, key=repr))
    if isinstance(obj, (list, tuple)):
        return tuple(_canonical(v) for v in obj)
    if isinstance(obj, Trace):
        return ("Trace", obj.name,
                tuple(_canonical(seg) for seg in obj.segments))
    if isinstance(obj, (str, int, float, bool, type(None))):
        return obj
    if isinstance(obj, enum.Enum):
        return (f"{type(obj).__module__}.{type(obj).__qualname__}", obj.name)
    if isinstance(obj, np.ndarray):
        return ("ndarray", obj.shape, str(obj.dtype), obj.tobytes().hex())
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, type):
        return f"{obj.__module__}.{obj.__qualname__}"
    # Fallback: classes with attribute dicts (e.g. plain objects).
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return (f"{type(obj).__module__}.{type(obj).__qualname__}",
                tuple((k, _canonical(v)) for k, v in sorted(state.items())
                      if not k.startswith("_")))
    return repr(obj)


def cell_key(cell: ScenarioCell, salt: Optional[str] = None) -> str:
    """Content-hash cache key for a cell (index-independent)."""
    payload = (
        salt if salt is not None else code_salt(),
        cell.kind,
        cell.control_dt,
        cell.ambient_c,
        cell.max_duration_s,
        cell.record_every,
        _canonical(cell.policy),
        _canonical(cell.trace),
        _canonical(cell.profile),
        _canonical(dict(cell.extra)),
    )
    return hashlib.sha256(repr(payload).encode()).hexdigest()


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class SweepCache:
    """Pickle-per-cell result cache with atomic writes.

    Corrupted or unreadable entries are treated as misses and deleted,
    so a torn write (or a foreign file) never poisons a sweep.  Writes
    additionally hold an advisory :class:`~repro.durability.lock.FileLock`
    on an adjacent ``.lock`` file, so two runners pointed at the same
    directory serialise their write sequences instead of interleaving
    them (the kernel releases the lock if a holder dies, so a crashed
    runner can never wedge the cache).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Advisory inter-process writer lock (reads stay lock-free).
        self.lock = FileLock(self.directory / ".lock")

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[CellResult]:
        """The cached result, or None on miss/corruption."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn write / wrong format: recover by recomputing.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, key: str, result: CellResult) -> None:
        """Store a result atomically (write-to-temp + rename, locked)."""
        path = self._path(key)
        with self.lock:
            fd, tmp = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@dataclass
class SimStats:
    """Throughput and phase accounting for one sweep run."""

    cells_total: int = 0
    cells_computed: int = 0
    #: Cells whose slot holds a :class:`CellFailure`.
    cells_failed: int = 0
    #: Extra execution attempts spent on retries (worker deaths).
    cell_retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Committed cells restored from the run journal (never recomputed).
    cells_resumed: int = 0
    #: Pending cells that found an in-cell sidecar checkpoint to
    #: continue from (their completed steps are not re-simulated).
    cells_checkpoint_resumed: int = 0
    #: Control steps across computed cells (cache hits excluded).
    steps_total: int = 0
    #: Wall time spent expanding the spec / hashing keys (s).
    expand_wall_s: float = 0.0
    #: Wall time spent running scenario cells (sum over workers, s).
    compute_wall_s: float = 0.0
    #: Wall time spent on cache reads/writes (s).
    cache_wall_s: float = 0.0
    #: End-to-end wall time of ``ScenarioRunner.run`` (s).
    total_wall_s: float = 0.0
    #: Backoff wall time spent waiting between retry attempts (s).
    backoff_wait_s: float = 0.0
    workers: int = 1
    #: Executor backend that ran the pending cells ("local",
    #: "distributed", ...; "none" when everything came from cache or
    #: the journal).
    executor: str = "none"
    #: Per-cell timeout mechanism for in-process execution: "none"
    #: (no budget), "sigalrm" (hard POSIX alarm) or "cooperative"
    #: (polled per-thread deadline; the off-main-thread / non-POSIX
    #: fallback).  Pool workers run cells on their own main threads,
    #: where the POSIX probe gives the same answer as the serial path.
    timeout_mechanism: str = "none"

    @property
    def steps_per_sec(self) -> float:
        """Simulated control steps per compute-second (serial-equivalent)."""
        if self.compute_wall_s <= 0:
            return 0.0
        return self.steps_total / self.compute_wall_s

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view (JSON-friendly)."""
        d = dataclasses.asdict(self)
        d["steps_per_sec"] = self.steps_per_sec
        return d


#: Per-cell progress states an external poller can observe.
#: "done"/"failed" are the executed outcomes; "cached" and "resumed"
#: are cells satisfied without execution (cache hit / journal replay).
CELL_STATES = ("queued", "running", "done", "failed", "cached", "resumed")

#: The subset of states that count as successfully finished.
_TERMINAL_OK = ("done", "cached", "resumed")


@dataclass(frozen=True)
class SweepProgress:
    """A point-in-time snapshot of a sweep's per-cell execution state.

    Built by :meth:`ScenarioRunner.progress` under the runner's
    progress lock, so an external poller (a status endpoint, another
    thread) can enumerate cell status mid-run without touching the
    executor.  ``done`` counts every successfully finished cell
    regardless of how it finished -- computed, cache hit or journal
    resume -- while the per-cell mapping keeps the distinction.
    """

    total: int
    queued: int
    running: int
    done: int
    failed: int
    #: index -> state, one of :data:`CELL_STATES`.
    cells: Dict[int, str] = field(default_factory=dict)
    #: index -> human-readable cell label.
    labels: Dict[int, str] = field(default_factory=dict, repr=False)

    @property
    def finished(self) -> bool:
        """Whether every cell has reached a terminal state."""
        return self.total > 0 and self.queued == 0 and self.running == 0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (cell indices become string keys)."""
        return {
            "total": self.total,
            "queued": self.queued,
            "running": self.running,
            "done": self.done,
            "failed": self.failed,
            "finished": self.finished,
            "cells": {str(i): s for i, s in sorted(self.cells.items())},
        }


@dataclass
class SweepResult:
    """Ordered results of a sweep plus run statistics.

    A result slot holds the cell's :data:`CellResult` -- or a
    :class:`CellFailure` when the cell raised, timed out or its worker
    died; ``failures``/``succeeded`` split the two.
    """

    cells: List[ScenarioCell]
    results: List[CellOutcome]
    stats: SimStats
    #: Merged observability blob of the whole sweep (None unless obs
    #: is enabled): the runner's own counters plus the fold of every
    #: computed cell's telemetry, identical totals for any worker
    #: count.  Out-of-band of the results -- excluded from equality.
    telemetry: Optional[obs.RunTelemetry] = field(
        default=None, repr=False, compare=False)

    def __iter__(self) -> Iterator[Tuple[ScenarioCell, CellOutcome]]:
        return iter(zip(self.cells, self.results))

    @property
    def failures(self) -> List[Tuple[ScenarioCell, CellFailure]]:
        """Cells whose slot holds a failure, in spec order."""
        return [(c, r) for c, r in self if isinstance(r, CellFailure)]

    @property
    def succeeded(self) -> List[Tuple[ScenarioCell, CellResult]]:
        """Cells that produced a real result, in spec order."""
        return [(c, r) for c, r in self if not isinstance(r, CellFailure)]

    def get(self, **axes: Any) -> CellOutcome:
        """The unique result matching the given axis values.

        Axes are matched against ``policy_key`` (``policy=...``),
        ``trace_key`` (``trace=...``), ``profile_key``
        (``profile=...``), ``control_dt`` and ``ambient_c``.
        Returns the failure object itself for a failed cell.
        """
        matches = [r for c, r in self if _cell_matches(c, axes)]
        if not matches:
            raise KeyError(f"no cell matches {axes}")
        if len(matches) > 1:
            raise KeyError(f"{len(matches)} cells match {axes}")
        return matches[0]

    def by_policy(self, **axes: Any) -> Dict[str, CellResult]:
        """Results keyed by policy for one point on the other axes."""
        out: Dict[str, CellResult] = {}
        for cell, result in self:
            if _cell_matches(cell, axes):
                if cell.policy_key in out:
                    raise KeyError(
                        f"policy {cell.policy_key!r} is ambiguous under {axes}")
                out[cell.policy_key] = result
        if not out:
            raise KeyError(f"no cell matches {axes}")
        return out


def _cell_matches(cell: ScenarioCell, axes: Mapping[str, Any]) -> bool:
    lookup = {
        "policy": cell.policy_key,
        "trace": cell.trace_key,
        "profile": cell.profile_key,
        "control_dt": cell.control_dt,
        "ambient_c": cell.ambient_c,
    }
    for name, want in axes.items():
        if name not in lookup:
            raise KeyError(f"unknown sweep axis {name!r}")
        if lookup[name] != want:
            return False
    return True


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _fleet_cell_supported(cell: ScenarioCell) -> bool:
    """Whether the fleet backend can batch this cell exactly."""
    if cell.kind != "discharge" or cell.extra:
        return False
    from ..fleet import supports_policy

    return supports_policy(cell.policy)


def _run_fleet_batch(
    cells: Sequence[ScenarioCell],
) -> List[Tuple[int, CellOutcome, float, int]]:
    """Run eligible cells as one vectorised batch.

    Returns the same ``(index, outcome, seconds, steps)`` tuples as
    :func:`_timed_cell`; the batch wall time is amortised evenly over
    its cells so :class:`SimStats` totals stay meaningful.  Any batch
    failure falls back to per-cell scalar execution -- batching is an
    optimisation, never a new failure mode.

    The batch honours the ``CAPMAN_FLEET_SHARDS`` env var: with a
    count above 1 the fleet row-shards across worker processes
    (:meth:`~repro.fleet.FleetSimulator.run_sharded`), with results
    byte-equal to the single-process run.
    """
    from ..fleet import DeviceSpec, FleetSpec

    started = time.perf_counter()
    try:
        spec = FleetSpec([
            DeviceSpec(policy=cell.policy, trace=cell.trace,
                       profile=cell.profile, control_dt=cell.control_dt,
                       max_duration_s=cell.max_duration_s,
                       ambient_c=cell.ambient_c,
                       record_every=cell.record_every)
            for cell in cells])
        results = spec.build().run_sharded()
    except Exception:
        return [_timed_cell(cell) for cell in cells]
    elapsed = (time.perf_counter() - started) / len(cells)
    return [(cell.index, result, elapsed, result.step_count)
            for cell, result in zip(cells, results)]


class ScenarioRunner:
    """Executes a :class:`SweepSpec` with optional fan-out and caching.

    Parameters
    ----------
    workers:
        Process count; ``None`` or 1 runs serially in-process,  ``0``
        means ``os.cpu_count()``.  Results are returned in spec order
        and are identical for every worker count.
    cache:
        A :class:`SweepCache`, a directory path for one, or ``None``
        to disable caching.  Failed cells are never cached.
    salt:
        Cache-key salt override; defaults to :func:`code_salt` so code
        edits invalidate old entries.
    retries:
        Extra execution attempts for a cell whose *worker died*
        (``BrokenProcessPool``); retried cells run in isolated
        single-cell pools so a crash-looping cell cannot take healthy
        cells down with it.  Exceptions raised *inside* a cell are
        deterministic simulator failures and are reported immediately
        without retry.  Legacy shorthand for
        ``retry=RetryPolicy.from_retries(retries)``.
    retry:
        A full :class:`~repro.sim.retry.RetryPolicy` (max attempts,
        exponential backoff, deterministic seeded jitter) governing
        infrastructure retries; overrides ``retries`` when given.
        The default is byte-equivalent to the historic behaviour
        (one immediate retry, no waiting).
    cell_timeout_s:
        Optional per-cell wall-clock budget; a cell over budget is
        reported as a :class:`CellFailure` (``CellTimeoutError``).
        The mechanism actually used (hard SIGALRM on POSIX main
        threads, cooperative polled deadline elsewhere) is surfaced
        as ``SimStats.timeout_mechanism``.
    executor:
        A :class:`~repro.sim.executors.SweepExecutor` backend, or
        ``None`` for the default
        :class:`~repro.sim.executors.LocalProcessExecutor` (serial /
        process-pool, governed by ``workers``).  The distributed TCP
        backend lives in :mod:`repro.sim.distributed`.
    journal:
        Optional path of a write-ahead run journal.  :meth:`run` then
        records every cell start and every committed result durably
        (fsync per record), and :meth:`resume` can continue the sweep
        after a crash/SIGKILL without recomputing committed cells.
        In-flight cells checkpoint into sidecar files under
        ``<journal>.d/`` and restart from their last checkpoint.
    checkpoint_every_steps:
        Sidecar-checkpoint cadence, in control steps, for journalled
        cells (0 disables in-cell checkpoints; commit-level durability
        still applies).  For "daily" sweeps checkpoints land at day
        boundaries regardless of cadence.
    stall_timeout_s:
        Optional heartbeat-stall watchdog for journalled discharge
        cells: a cell whose control loop stops beating for this long
        has its latest sidecar checkpoint flushed and is retired as a
        contained timeout failure.
    backend:
        ``"scalar"`` (default) runs every cell through the scalar
        engine.  ``"fleet"`` batches eligible discharge cells (no
        ``extra`` kwargs, fleet-supported policy) through
        :class:`repro.fleet.FleetSimulator` -- results are bit-for-bit
        the scalar ones, just computed as one vectorised batch.
        Ineligible cells, journalled sweeps and observed sweeps fall
        back to the scalar path automatically.  Setting the
        ``CAPMAN_FLEET_SHARDS`` env var above 1 additionally
        row-shards each fleet batch across worker processes (results
        unchanged, byte for byte).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Union[SweepCache, str, Path, None] = None,
        salt: Optional[str] = None,
        retries: int = 1,
        cell_timeout_s: Optional[float] = None,
        journal: Union[str, Path, None] = None,
        checkpoint_every_steps: int = 0,
        stall_timeout_s: Optional[float] = None,
        backend: str = "scalar",
        retry: Optional[RetryPolicy] = None,
        executor: Optional[SweepExecutor] = None,
    ) -> None:
        if workers == 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, workers or 1)
        if cache is not None and not isinstance(cache, SweepCache):
            cache = SweepCache(cache)
        self.cache = cache
        self._salt = salt
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.retry = (retry if retry is not None
                      else RetryPolicy.from_retries(retries))
        self.retries = self.retry.retries
        self.cell_timeout_s = cell_timeout_s
        self.executor = executor
        self.journal = Path(journal) if journal is not None else None
        if checkpoint_every_steps < 0:
            raise ValueError("checkpoint_every_steps must be non-negative")
        self.checkpoint_every_steps = checkpoint_every_steps
        self.stall_timeout_s = stall_timeout_s
        if backend not in ("scalar", "fleet"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        #: Guards the per-cell state map behind :meth:`progress`.
        self._progress_lock = threading.Lock()
        self._cell_states: Dict[int, str] = {}
        self._cell_labels: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def _set_state(self, index: int, state: str) -> None:
        with self._progress_lock:
            # A terminal state never regresses to "running": a late
            # dispatch notification (e.g. a re-granted lease racing its
            # own commit) must not make a finished cell look active.
            if (state == "running"
                    and self._cell_states.get(index) in _TERMINAL_OK
                    + ("failed",)):
                return
            self._cell_states[index] = state

    def progress(self) -> SweepProgress:
        """Thread-safe snapshot of the current sweep's cell states.

        Callable from any thread while :meth:`run` /
        :meth:`run_or_resume` executes on another; before the first run
        (or after constructing the runner) the snapshot is empty.
        """
        with self._progress_lock:
            states = dict(self._cell_states)
            labels = dict(self._cell_labels)
        return SweepProgress(
            total=len(states),
            queued=sum(1 for s in states.values() if s == "queued"),
            running=sum(1 for s in states.values() if s == "running"),
            done=sum(1 for s in states.values() if s in _TERMINAL_OK),
            failed=sum(1 for s in states.values() if s == "failed"),
            cells=states,
            labels=labels,
        )

    # ------------------------------------------------------------------
    def run(self, spec: SweepSpec) -> SweepResult:
        """Execute every cell of ``spec``; see the class docstring."""
        if self.journal is None:
            return self._run(spec, journal=None, committed={}, salt=None)
        if self.journal.exists() and self.journal.stat().st_size > 0:
            raise JournalError(
                f"journal {self.journal} already has records; call "
                f"ScenarioRunner.resume() to continue that sweep, or "
                f"delete the journal to start over")
        salt = self._salt if self._salt is not None else code_salt()
        with RunJournal(self.journal) as journal:
            journal.append("sweep_start", {
                "spec": encode_blob(pickle.dumps(spec, protocol=4)),
                "salt": salt,
                "n_cells": len(spec),
                "kind": spec.kind,
            })
            return self._run(spec, journal=journal, committed={}, salt=salt)

    def resume(self, journal: Union[str, Path, None] = None) -> SweepResult:
        """Continue a journalled sweep after a crash or kill.

        Replays the journal (recovering any torn tail by truncation),
        reconstructs the spec and key salt from the ``sweep_start``
        header, fills every committed cell's result slot straight from
        its commit record -- byte-identical, never recomputed -- and
        runs only the remainder.  Half-done cells restart from their
        sidecar checkpoints.  The journal keeps extending, so resume
        is itself resumable.
        """
        path = Path(journal) if journal is not None else self.journal
        if path is None:
            raise JournalError(
                "no journal to resume: pass a path or construct the "
                "runner with journal=...")
        records = RunJournal.replay(path)
        if not records or records[0]["type"] != "sweep_start":
            raise JournalError(
                f"{path} is not a sweep journal (missing sweep_start "
                f"header record)")
        head = records[0]["data"]
        spec: SweepSpec = pickle.loads(decode_blob(head["spec"]))
        committed: Dict[int, CellResult] = {}
        grants: Dict[int, int] = {}
        for record in records[1:]:
            data = record["data"]
            if record["type"] == "cell_commit":
                committed[data["index"]] = pickle.loads(
                    decode_blob(data["result"]))
            elif record["type"] == "lease_grant" \
                    and not data.get("duplicate", False):
                grants[data["index"]] = grants.get(data["index"], 0) + 1
        # A grant that later committed consumed its attempt normally;
        # only journalled-but-uncommitted grants are orphans of the
        # dead coordinator and must charge the cell's failure budget.
        replayed = {index: count for index, count in grants.items()
                    if index not in committed}
        with RunJournal(path) as live:
            return self._run(spec, journal=live, committed=committed,
                             salt=head["salt"], replayed_grants=replayed)

    def run_or_resume(self, spec: SweepSpec) -> SweepResult:
        """Run ``spec``, or resume the runner's journal if it has records.

        The idempotent entry point for batch jobs: the first invocation
        starts a journalled sweep, a re-invocation after a crash (or a
        kill) picks up where the journal left off.  On resume the
        journal's recorded spec governs -- it froze the sweep's identity
        at ``sweep_start`` -- so ``spec`` is only consulted for a sanity
        check that the caller is re-running the same grid shape.
        """
        if self.journal is not None and self.journal.exists() \
                and self.journal.stat().st_size > 0:
            result = self.resume()
            if len(result.results) != len(spec):
                raise JournalError(
                    f"journal {self.journal} records a {len(result.results)}-"
                    f"cell sweep but the caller passed a {len(spec)}-cell "
                    f"spec; delete the journal to start the new sweep")
            return result
        return self.run(spec)

    # ------------------------------------------------------------------
    def _run(self, spec: SweepSpec, journal: Optional[RunJournal],
             committed: Dict[int, CellResult],
             salt: Optional[str],
             replayed_grants: Optional[Dict[int, int]] = None) -> SweepResult:
        run_started = time.perf_counter()
        stats = SimStats(workers=self.workers)
        stats.timeout_mechanism = choose_timeout_mechanism(
            self.cell_timeout_s)

        # Observability (default off).  One scope spans the sweep;
        # serially computed cells nest their cycle scopes inside it,
        # while remote/resumed cells ship their blobs back on the
        # results and are folded in below -- the merged totals are
        # identical for any worker count.
        ob = obs.session()
        observing = ob is not None
        if observing:
            scope = ob.scope("sweep", spec.kind)
            sweep_span = ob.tracer.start("sweep", kind=spec.kind,
                                         cells=len(spec))
        remote_blobs: List[obs.RunTelemetry] = []
        telemetry: Optional[obs.RunTelemetry] = None

        try:
            expand_started = time.perf_counter()
            cells = spec.expand()
            stats.cells_total = len(cells)
            with self._progress_lock:
                self._cell_states = {cell.index: "queued" for cell in cells}
                self._cell_labels = {cell.index: cell.label for cell in cells}
            keys: List[Optional[str]] = [None] * len(cells)
            if self.cache is not None or journal is not None:
                if salt is None:
                    salt = self._salt if self._salt is not None else code_salt()
                keys = [cell_key(cell, salt) for cell in cells]
            stats.expand_wall_s = time.perf_counter() - expand_started

            results: List[Optional[CellResult]] = [None] * len(cells)
            pending: List[ScenarioCell] = []
            cache_started = time.perf_counter()
            for cell in cells:
                if cell.index in committed:
                    # Journalled and durable: the recorded result is the
                    # result -- recomputing it is exactly what the
                    # write-ahead log exists to prevent.
                    results[cell.index] = committed[cell.index]
                    stats.cells_resumed += 1
                    self._set_state(cell.index, "resumed")
                    if observing:
                        blob = getattr(committed[cell.index], "telemetry", None)
                        if blob is not None:
                            remote_blobs.append(blob)
                    continue
                if self.cache is not None:
                    hit = self.cache.get(keys[cell.index])  # type: ignore[arg-type]
                    if hit is not None:
                        results[cell.index] = hit
                        stats.cache_hits += 1
                        self._set_state(cell.index, "cached")
                        continue
                    stats.cache_misses += 1
                pending.append(cell)
            if self.cache is not None:
                stats.cache_wall_s += time.perf_counter() - cache_started

            ckpts: Dict[int, str] = {}
            if journal is not None and pending:
                sidecar_dir = Path(str(journal.path) + ".d")
                for cell in pending:
                    sidecar = sidecar_dir / f"cell-{keys[cell.index][:16]}.ckpt"  # type: ignore[index]
                    ckpts[cell.index] = str(sidecar)
                    if sidecar.exists():
                        stats.cells_checkpoint_resumed += 1
                for cell in pending:
                    journal.append("cell_start", {
                        "index": cell.index,
                        "key": keys[cell.index],
                        "label": cell.label,
                    })

            def _finalise(index: int, outcome: CellOutcome) -> None:
                """Durably commit a final outcome as it lands.

                Failures are deliberately not committed -- a resume retries
                them -- and a committed cell's sidecar checkpoint is
                deleted: the commit record supersedes it.
                """
                self._set_state(index, "failed"
                                if isinstance(outcome, CellFailure)
                                else "done")
                if journal is None or isinstance(outcome, CellFailure):
                    return
                journal.append("cell_commit", {
                    "index": index,
                    "key": keys[index],
                    "result": encode_blob(pickle.dumps(outcome, protocol=4)),
                })
                sidecar = ckpts.get(index)
                if sidecar is not None:
                    try:
                        os.unlink(sidecar)
                    except OSError:
                        pass

            # Peel off cells the vectorised fleet backend can batch.
            # Journalled and observed sweeps keep the scalar path: the
            # journal commits per cell as it lands, and telemetry is
            # harvested per cycle scope -- neither exists batch-wise.
            fleet_batch: List[ScenarioCell] = []
            if (pending and self.backend == "fleet" and journal is None
                    and not observing):
                fleet_batch = [cell for cell in pending
                               if _fleet_cell_supported(cell)]
                if fleet_batch:
                    taken = {cell.index for cell in fleet_batch}
                    pending = [cell for cell in pending
                               if cell.index not in taken]

            if pending or fleet_batch:
                computed: List[Tuple[int, CellOutcome, float, int]] = []
                if fleet_batch:
                    computed.extend(_run_fleet_batch(fleet_batch))
                if pending:
                    executor = self.executor or LocalProcessExecutor(
                        self.workers)
                    ctx = ExecutionContext(
                        cell_timeout_s=self.cell_timeout_s,
                        ckpts=ckpts,
                        checkpoint_every_steps=self.checkpoint_every_steps,
                        stall_timeout_s=self.stall_timeout_s,
                        retry=self.retry,
                        workers=self.workers,
                        obs_enabled=observing,
                        on_final=_finalise,
                        stats=stats,
                        journal_append=(journal.append
                                        if journal is not None else None),
                        replayed_grants=dict(replayed_grants or {}),
                        on_start=lambda index: self._set_state(
                            index, "running"),
                    )
                    executor.attach(ctx)
                    try:
                        computed.extend(executor.run(pending))
                    finally:
                        executor.detach()
                    stats.executor = executor.name
                    if observing:
                        # Serially computed cells already merged their
                        # cycle scopes into the sweep scope in-process;
                        # remote cells ship their blobs on the result,
                        # and the executor tells them apart.
                        remote_blobs.extend(executor.remote_blobs())
                for index, result, elapsed, steps in computed:
                    results[index] = result
                    stats.compute_wall_s += elapsed
                    stats.steps_total += steps
                    stats.cells_computed += 1
                    if isinstance(result, CellFailure):
                        stats.cells_failed += 1
                    # Fleet-batched cells bypass ctx.finalise; settle
                    # their progress state here (idempotent elsewhere).
                    self._set_state(index, "failed"
                                    if isinstance(result, CellFailure)
                                    else "done")
                if self.cache is not None:
                    cache_started = time.perf_counter()
                    for index, result, _, _ in computed:
                        if not isinstance(result, CellFailure):
                            # Telemetry is run-local observability, not
                            # simulated outcome: cache entries are stored
                            # without it so a later (possibly obs-off) run
                            # never replays another run's counters.
                            if getattr(result, "telemetry", None) is not None:
                                result = dataclasses.replace(result,
                                                             telemetry=None)
                            self.cache.put(keys[index], result)  # type: ignore[arg-type]
                    stats.cache_wall_s += time.perf_counter() - cache_started

            stats.total_wall_s = time.perf_counter() - run_started
        finally:
            # Harvest in the finally so an aborted sweep (journal error,
            # keyboard interrupt) still closes the scope and keeps the
            # session's scope stack sound.
            if observing:
                sweep_span.finish()
                reg = scope.registry
                for name, value in stats.as_dict().items():
                    # backoff_wait_s (and sweep.retries) are counted
                    # live by ExecutionContext.count_retry at retry
                    # time; exporting the stats field again would
                    # double-count them.
                    if (name in ("workers", "steps_per_sec",
                                 "backoff_wait_s")
                            or not isinstance(value, (int, float))):
                        continue
                    reg.counter(f"sweep.{name}").inc(value)
                telemetry = scope.telemetry()
                for blob in remote_blobs:
                    telemetry = telemetry.merge(blob)
                scope.close()
                ob.export_telemetry(telemetry)
        return SweepResult(cells=cells, results=list(results), stats=stats,  # type: ignore[arg-type]
                           telemetry=telemetry)

