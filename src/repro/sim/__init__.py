"""Simulation engine: control stepping, metrics, discharge cycles,
multi-day discharge/charge/aging runs, the parallel scenario-sweep
engine that drives the evaluation grids, and the chaos harness that
crosses those grids with fault scenarios."""

from .daily import DayRecord, MultiDayResult, run_days
from .discharge import (
    DischargeResult,
    PolicyContext,
    SchedulingPolicy,
    run_discharge_cycle,
)
from .engine import ControlStep, iter_control_steps
from .metrics import MetricsRecorder, TimeSeries
from .retry import RetryPolicy
from .sweep import (
    CellFailure,
    CellTimeoutError,
    ScenarioCell,
    ScenarioRunner,
    SimStats,
    SweepCache,
    SweepResult,
    SweepSpec,
)
from .executors import ExecutorHeartbeat, LocalProcessExecutor, SweepExecutor
from .distributed import DistributedExecutor, SweepCoordinator, SweepWorker
from .cache_server import CacheServer, NetworkSweepCache

# chaos depends on everything above; keep it last.
from .chaos import (
    BackendChaos,
    BackendChaosReport,
    ChaosReport,
    ChaosRow,
    ChaosSpec,
    FaultScenario,
    run_backend_chaos,
    run_chaos,
    standard_scenarios,
)

__all__ = [
    "DayRecord",
    "MultiDayResult",
    "run_days",
    "DischargeResult",
    "PolicyContext",
    "SchedulingPolicy",
    "run_discharge_cycle",
    "ControlStep",
    "iter_control_steps",
    "MetricsRecorder",
    "TimeSeries",
    "CellFailure",
    "CellTimeoutError",
    "RetryPolicy",
    "ScenarioCell",
    "ScenarioRunner",
    "SimStats",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "SweepExecutor",
    "ExecutorHeartbeat",
    "LocalProcessExecutor",
    "DistributedExecutor",
    "SweepCoordinator",
    "SweepWorker",
    "CacheServer",
    "NetworkSweepCache",
    "BackendChaos",
    "BackendChaosReport",
    "run_backend_chaos",
    "ChaosReport",
    "ChaosRow",
    "ChaosSpec",
    "FaultScenario",
    "run_chaos",
    "standard_scenarios",
]
