"""Simulation engine: control stepping, metrics, discharge cycles,
multi-day discharge/charge/aging runs, the parallel scenario-sweep
engine that drives the evaluation grids, and the chaos harness that
crosses those grids with fault scenarios."""

from .daily import DayRecord, MultiDayResult, run_days
from .discharge import (
    DischargeResult,
    PolicyContext,
    SchedulingPolicy,
    run_discharge_cycle,
)
from .engine import ControlStep, iter_control_steps
from .metrics import MetricsRecorder, TimeSeries
from .sweep import (
    CellFailure,
    CellTimeoutError,
    ScenarioCell,
    ScenarioRunner,
    SimStats,
    SweepCache,
    SweepResult,
    SweepSpec,
)

# chaos depends on everything above; keep it last.
from .chaos import (
    ChaosReport,
    ChaosRow,
    ChaosSpec,
    FaultScenario,
    run_chaos,
    standard_scenarios,
)

__all__ = [
    "DayRecord",
    "MultiDayResult",
    "run_days",
    "DischargeResult",
    "PolicyContext",
    "SchedulingPolicy",
    "run_discharge_cycle",
    "ControlStep",
    "iter_control_steps",
    "MetricsRecorder",
    "TimeSeries",
    "CellFailure",
    "CellTimeoutError",
    "ScenarioCell",
    "ScenarioRunner",
    "SimStats",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "ChaosReport",
    "ChaosRow",
    "ChaosSpec",
    "FaultScenario",
    "run_chaos",
    "standard_scenarios",
]
