"""Simulation engine: control stepping, metrics, discharge cycles,
multi-day discharge/charge/aging runs, and the parallel scenario-sweep
engine that drives the evaluation grids."""

from .daily import DayRecord, MultiDayResult, run_days
from .discharge import (
    DischargeResult,
    PolicyContext,
    SchedulingPolicy,
    run_discharge_cycle,
)
from .engine import ControlStep, iter_control_steps
from .metrics import MetricsRecorder, TimeSeries
from .sweep import (
    ScenarioCell,
    ScenarioRunner,
    SimStats,
    SweepCache,
    SweepResult,
    SweepSpec,
)

__all__ = [
    "DayRecord",
    "MultiDayResult",
    "run_days",
    "DischargeResult",
    "PolicyContext",
    "SchedulingPolicy",
    "run_discharge_cycle",
    "ControlStep",
    "iter_control_steps",
    "MetricsRecorder",
    "TimeSeries",
    "ScenarioCell",
    "ScenarioRunner",
    "SimStats",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
]
