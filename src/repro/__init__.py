"""repro -- a full reproduction of CAPMAN (ICDCS 2020).

CAPMAN: Cooling and Active Power Management in big.LITTLE Battery
Supported Devices (Zhou, Xu, Zheng, Wang).

The package is organised as the paper's system is:

* :mod:`repro.core`     -- the MDP formulation, the bipartite MDP
  graph, the structural-similarity recursion (Algorithm 1), exact
  solvers, the O(1/(1-rho)) competitiveness bound, and the online
  scheduler.
* :mod:`repro.battery`  -- chemistry catalogue (Table I), KiBaM cell
  model, V-edge analysis, switch facility, big.LITTLE pack.
* :mod:`repro.thermal`  -- RC thermal network, TEC model (Eq. 1),
  45 degC hot-spot thermostat.
* :mod:`repro.device`   -- power states (Fig. 7), power models
  (Tables II/III), phone profiles, system-call vocabulary, the phone.
* :mod:`repro.workload` -- Geekbench / PCMark / Video / eta-Static /
  screen-toggle / skewed-burst generators and trace record-replay.
* :mod:`repro.sim`      -- control-step engine and the discharge-cycle
  experiment harness.
* :mod:`repro.capman`   -- the CAPMAN policy plus the Oracle /
  Practice / Dual / Heuristic baselines, profiler, actuator,
  runtime calibration.
* :mod:`repro.faults`   -- seeded fault injection (switch / TEC /
  sensor / cell) and supervised degraded-mode control.
* :mod:`repro.analysis` -- fitting, radar normalisation, reporting.
* :mod:`repro.obs`      -- observability spine: metrics registry,
  hierarchical tracer, exporters; off by default and provably
  invisible to every simulated quantity when off.

Quickstart::

    from repro.capman import CapmanPolicy, PracticePolicy
    from repro.sim import run_discharge_cycle
    from repro.workload import VideoWorkload, record_trace

    trace = record_trace(VideoWorkload(seed=1), duration_s=1200)
    capman = run_discharge_cycle(CapmanPolicy(), trace)
    stock = run_discharge_cycle(PracticePolicy(), trace)
    print(capman.service_time_s / stock.service_time_s)
"""

from . import (analysis, battery, capman, core, device, faults, obs, sim,
               thermal, workload)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "battery",
    "capman",
    "core",
    "device",
    "faults",
    "obs",
    "sim",
    "thermal",
    "workload",
    "__version__",
]
