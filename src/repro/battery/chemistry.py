"""Battery chemistry catalogue (paper Table I and Figure 4).

The paper surveys six widely used lithium chemistries and rates each on
five dimensions (cost efficiency, lifetime, discharge rate, energy
density, safety).  From the two key dimensions -- energy density and
discharge rate -- it classifies every chemistry as either a *big*
battery (high energy density, gentle discharge) or a *LITTLE* battery
(high discharge rate, good at power bursts).

This module carries the published star ratings and derives the physical
cell parameters (KiBaM well split, internal resistance, current limits)
that the :mod:`repro.battery.cell` model needs.  The derivations are the
substitution for real cells documented in DESIGN.md: the star ratings
are mapped onto parameter ranges typical for each chemistry so that the
*relative* behaviour (LMO out-discharges NCA, NCA stores more) matches
the paper's Figures 1 and 2.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "BatteryRole",
    "FeatureRatings",
    "Chemistry",
    "CHEMISTRIES",
    "LCO",
    "NCA",
    "LMO",
    "NMC",
    "LFP",
    "LTO",
    "classify",
    "pick_big_little",
]


class BatteryRole(enum.Enum):
    """Role of a chemistry inside a big.LITTLE pack."""

    BIG = "big"
    LITTLE = "LITTLE"


@dataclass(frozen=True)
class FeatureRatings:
    """Star ratings (1..5) on the paper's five radar dimensions.

    The first four columns come from Table I; safety is the fifth axis
    of the Figure 4 radar map.
    """

    cost_efficiency: int
    lifetime: int
    discharge_rate: int
    energy_density: int
    safety: int

    def __post_init__(self) -> None:
        for name in (
            "cost_efficiency",
            "lifetime",
            "discharge_rate",
            "energy_density",
            "safety",
        ):
            value = getattr(self, name)
            if not 1 <= value <= 5:
                raise ValueError(f"rating {name}={value} outside 1..5")

    def as_dict(self) -> Dict[str, int]:
        """Return the ratings keyed by dimension name."""
        return {
            "cost_efficiency": self.cost_efficiency,
            "lifetime": self.lifetime,
            "discharge_rate": self.discharge_rate,
            "energy_density": self.energy_density,
            "safety": self.safety,
        }

    def normalized(self) -> Dict[str, float]:
        """Ratings scaled to [0, 1] for the Figure 4 radar map."""
        return {k: (v - 1) / 4.0 for k, v in self.as_dict().items()}


# Parameter maps from star ratings to physics.  These are deliberately
# simple monotone tables; the cell model only needs correct ordering and
# plausible magnitudes, not cell-datasheet accuracy.

#: Maximum continuous discharge C-rate by discharge-rate stars.
_C_RATE_BY_STARS: Dict[int, float] = {1: 1.0, 2: 2.0, 3: 5.0, 4: 10.0, 5: 20.0}

#: Volumetric energy density (Wh/L) by energy-density stars.
_WH_PER_L_BY_STARS: Dict[int, float] = {1: 130.0, 2: 220.0, 3: 380.0, 4: 560.0, 5: 700.0}

#: Internal ohmic resistance (ohm) for a ~2500 mAh cell, by discharge stars.
_R_INT_BY_STARS: Dict[int, float] = {1: 0.160, 2: 0.110, 3: 0.075, 4: 0.045, 5: 0.028}

#: KiBaM available-charge fraction ``c`` by discharge stars.  A larger
#: available well means the cell tolerates bursts without stranding
#: charge in the bound well.
_KIBAM_C_BY_STARS: Dict[int, float] = {1: 0.30, 2: 0.40, 3: 0.50, 4: 0.62, 5: 0.75}

#: KiBaM diffusion rate constant ``k`` (1/s) by discharge stars.  A
#: larger ``k`` replenishes the available well faster (better recovery).
#: Calibrated so a ~2500 mAh big cell can sustain roughly 1 A while a
#: LITTLE cell sustains several amps -- putting the rate-capacity
#: crossover right in the smartphone burst range (paper Figure 2).
_KIBAM_K_BY_STARS: Dict[int, float] = {
    1: 1.5e-5,
    2: 3.0e-5,
    3: 6.0e-5,
    4: 4.0e-4,
    5: 1.0e-3,
}

#: Coulombic / side-reaction efficiency at gentle rates by discharge
#: stars.  Power-optimised chemistries (e.g. LMO's manganese
#: dissolution) trade standing losses for burst capability, which is
#: why the big battery wins long, steady workloads (paper Fig. 2(a)).
_EFFICIENCY_BY_STARS: Dict[int, float] = {1: 0.995, 2: 0.99, 3: 0.98, 4: 0.95, 5: 0.93}

#: V-edge RC time constant (s) by discharge stars: sluggish-diffusion
#: chemistries sag longer and deeper on a load step.
_TRANSIENT_TAU_BY_STARS: Dict[int, float] = {1: 30.0, 2: 20.0, 3: 12.0, 4: 5.0, 5: 2.0}

#: Quadratic rate-loss coefficient by discharge stars: the share of
#: delivered energy additionally wasted grows as (I / I_sustainable)^2.
#: This is the D1 area of the paper's Figure 3 -- the overpotential
#: loss a scheduler avoids by not serving bursts from a big battery.
_RATE_LOSS_BY_STARS: Dict[int, float] = {1: 0.40, 2: 0.32, 3: 0.20, 4: 0.05, 5: 0.03}

#: Hard cap on the extra rate-loss fraction.
RATE_LOSS_CAP = 0.55

#: Cycle life (full discharge cycles) by lifetime stars.
_CYCLES_BY_STARS: Dict[int, int] = {1: 500, 2: 800, 3: 1200, 4: 2000, 5: 7000}

#: Relative cost (USD per kWh, rough industry bands) by cost stars.
#: Higher stars mean *better* cost efficiency, hence lower $/kWh.
_USD_PER_KWH_BY_STARS: Dict[int, float] = {1: 1020.0, 2: 840.0, 3: 580.0, 4: 420.0, 5: 300.0}


@dataclass(frozen=True)
class Chemistry:
    """A lithium battery chemistry with ratings and derived physics.

    Instances are immutable; the module-level constants (:data:`LMO`,
    :data:`NCA`, ...) are the catalogue the paper works from.
    """

    name: str
    formula: str
    ratings: FeatureRatings
    nominal_voltage: float = 3.7
    #: Voltage below which the cell is considered empty.
    cutoff_voltage: float = 3.0
    #: Voltage of a fully charged cell.
    full_voltage: float = 4.2
    #: Temperature coefficient of internal resistance (1/K).
    resistance_temp_coeff: float = 0.006
    #: RC transient used by the V-edge model: series resistance (ohm).
    transient_resistance: float = field(default=0.0)
    #: RC transient time constant (s).
    transient_tau: float = field(default=0.0)
    #: Optional override of the star-derived KiBaM diffusion rate
    #: (used by time-compressed tuning runs; see :meth:`time_compressed`).
    kibam_k_override: float = field(default=0.0)

    # ------------------------------------------------------------------
    # Derived physical parameters
    # ------------------------------------------------------------------
    @property
    def max_c_rate(self) -> float:
        """Maximum continuous discharge rate, in multiples of capacity."""
        return _C_RATE_BY_STARS[self.ratings.discharge_rate]

    @property
    def energy_density_wh_per_l(self) -> float:
        """Volumetric energy density in Wh/L."""
        return _WH_PER_L_BY_STARS[self.ratings.energy_density]

    @property
    def internal_resistance(self) -> float:
        """Ohmic internal resistance at 25 degC for a ~2500 mAh cell."""
        return _R_INT_BY_STARS[self.ratings.discharge_rate]

    @property
    def kibam_c(self) -> float:
        """KiBaM available-charge fraction ``c`` in (0, 1)."""
        return _KIBAM_C_BY_STARS[self.ratings.discharge_rate]

    @property
    def kibam_k(self) -> float:
        """KiBaM diffusion rate constant ``k`` in 1/s."""
        if self.kibam_k_override > 0.0:
            return self.kibam_k_override
        return _KIBAM_K_BY_STARS[self.ratings.discharge_rate]

    def time_compressed(self, scale: float) -> "Chemistry":
        """A copy suited to a capacity-scaled (faster) simulation.

        Scaling a cell's capacity by ``scale`` also scales its bound
        well, so its sustainable current would shrink; dividing the
        diffusion constant by ``scale`` keeps the sustainable current
        -- and hence the scheduling regime -- invariant.  Used by the
        Oracle's offline tuning pre-runs.
        """
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must lie in (0, 1]")
        import dataclasses

        return dataclasses.replace(self, kibam_k_override=self.kibam_k / scale)

    @property
    def coulombic_efficiency(self) -> float:
        """Fraction of drawn charge delivered usefully at gentle rates."""
        return _EFFICIENCY_BY_STARS[self.ratings.discharge_rate]

    @property
    def rate_loss_coeff(self) -> float:
        """Quadratic overpotential-loss coefficient (see module docs)."""
        return _RATE_LOSS_BY_STARS[self.ratings.discharge_rate]

    @property
    def cycle_life(self) -> int:
        """Rated full discharge cycles."""
        return _CYCLES_BY_STARS[self.ratings.lifetime]

    @property
    def usd_per_kwh(self) -> float:
        """Rough pack-level cost in USD per kWh."""
        return _USD_PER_KWH_BY_STARS[self.ratings.cost_efficiency]

    @property
    def role(self) -> BatteryRole:
        """big/LITTLE classification (Table I ``Result`` column)."""
        return classify(self)

    def capacity_mah_for_volume(self, volume_cc: float) -> float:
        """Capacity (mAh) of a cell of this chemistry filling ``volume_cc``.

        Used when sizing a pack under a fixed volume budget: a big
        chemistry packs more charge into the same can.
        """
        if volume_cc <= 0:
            raise ValueError("volume must be positive")
        wh = self.energy_density_wh_per_l * volume_cc / 1000.0
        return wh / self.nominal_voltage * 1000.0

    def effective_transient(self) -> Tuple[float, float]:
        """(resistance, tau) of the diffusion RC branch for V-edge.

        Chemistries with sluggish diffusion (low ``k``) show a deeper,
        slower V-edge; fast chemistries barely sag.
        """
        if self.transient_resistance > 0 and self.transient_tau > 0:
            return self.transient_resistance, self.transient_tau
        r1 = 0.8 * self.internal_resistance
        tau = _TRANSIENT_TAU_BY_STARS[self.ratings.discharge_rate]
        return r1, tau


def classify(chemistry: Chemistry) -> BatteryRole:
    """Classify a chemistry as big or LITTLE (paper Table I rule).

    A chemistry whose energy density strictly exceeds its discharge rate
    is a *big* battery; otherwise it is a *LITTLE* battery.  This
    reproduces the ``Result`` column of Table I exactly.
    """
    r = chemistry.ratings
    if r.energy_density > r.discharge_rate:
        return BatteryRole.BIG
    return BatteryRole.LITTLE


# ----------------------------------------------------------------------
# The catalogue (Table I rows, plus the safety axis of Figure 4)
# ----------------------------------------------------------------------

LCO = Chemistry("LCO", "LiCoO2", FeatureRatings(2, 3, 2, 4, 2))
NCA = Chemistry("NCA", "LiNiCoAlO2", FeatureRatings(3, 1, 3, 4, 2))
LMO = Chemistry("LMO", "LiMn2O4", FeatureRatings(3, 1, 4, 3, 3))
NMC = Chemistry("NMC", "LiNiMnCoO2", FeatureRatings(4, 4, 4, 3, 3))
LFP = Chemistry("LFP", "LiFePO4", FeatureRatings(2, 4, 5, 2, 5), nominal_voltage=3.2,
                cutoff_voltage=2.5, full_voltage=3.65)
LTO = Chemistry("LTO", "LiTi5O12", FeatureRatings(1, 5, 5, 1, 5), nominal_voltage=2.4,
                cutoff_voltage=1.8, full_voltage=2.85)

#: All catalogued chemistries keyed by short name.
CHEMISTRIES: Dict[str, Chemistry] = {
    c.name: c for c in (LCO, NCA, LMO, NMC, LFP, LTO)
}


def pick_big_little() -> Tuple[Chemistry, Chemistry]:
    """Return the paper's chosen (big, LITTLE) pair: (NCA, LMO).

    The paper picks two chemistries that are nearly orthogonal on the
    discharge-rate / energy-density axes: NCA as the big battery and
    LMO as the LITTLE battery.
    """
    return NCA, LMO


def orthogonality(a: Chemistry, b: Chemistry) -> float:
    """Angle-based orthogonality score of two chemistries in the
    (discharge rate, energy density) plane, in [0, 1].

    1.0 means the two feature vectors are perpendicular (a perfect
    big/LITTLE complement), 0.0 means they are colinear.  Used by the
    Table I / Figure 4 benchmark to justify the NCA+LMO pick.
    """
    mid = 3.0  # centre of the 1..5 star scale
    va = (a.ratings.discharge_rate - mid, a.ratings.energy_density - mid)
    vb = (b.ratings.discharge_rate - mid, b.ratings.energy_density - mid)
    na = math.hypot(*va)
    nb = math.hypot(*vb)
    if na == 0 or nb == 0:
        return 0.0
    cos = (va[0] * vb[0] + va[1] * vb[1]) / (na * nb)
    return 1.0 - abs(cos)
