"""Supercapacitor output filter for the LITTLE battery rail.

The prototype (paper Figure 10) installs a supercapacitor to boost and
filter the LITTLE battery's spiky output so CAPMAN sees a reliable
supply.  We model it as an energy buffer with equivalent series
resistance: demand spikes are served from the capacitor, which the
battery then refills at a bounded rate, turning sharp load edges into
smoothed battery current.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..durability.state import pack_state, unpack_state
from . import kinetics

__all__ = ["Supercapacitor"]


@dataclass
class Supercapacitor:
    """An ideal-plus-ESR supercapacitor buffer.

    Parameters
    ----------
    capacitance_f:
        Capacitance in farads.
    rated_voltage:
        Maximum (and initial) voltage.
    esr_ohm:
        Equivalent series resistance, dissipated as heat on throughput.
    refill_power_w:
        Maximum power the battery may use to recharge the capacitor.
    """

    capacitance_f: float = 5.0
    rated_voltage: float = 4.2
    esr_ohm: float = 0.02
    refill_power_w: float = 1.5

    _voltage: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0 or self.rated_voltage <= 0:
            raise ValueError("capacitance and rated voltage must be positive")
        self._voltage = self.rated_voltage

    @property
    def voltage(self) -> float:
        """Present capacitor voltage (V)."""
        return self._voltage

    @property
    def stored_energy_j(self) -> float:
        """Energy currently stored (J)."""
        return 0.5 * self.capacitance_f * self._voltage ** 2

    @property
    def headroom_j(self) -> float:
        """Energy needed to refill to rated voltage (J)."""
        full = 0.5 * self.capacitance_f * self.rated_voltage ** 2
        return max(0.0, full - self.stored_energy_j)

    def smooth(self, demand_w: float, dt: float) -> "SmoothedDraw":
        """Filter a demand step through the buffer.

        Returns how much power the *battery* must supply this step: the
        part of the demand above the refill budget is served from the
        capacitor when it has energy, and the battery additionally
        refills the capacitor with leftover budget.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        if demand_w < 0:
            raise ValueError("demand must be non-negative")
        battery_w, from_cap_j, heat_j, self._voltage = kinetics.supercap_smooth(
            demand_w, dt, self._voltage,
            self.capacitance_f, self.rated_voltage, self.esr_ohm,
            self._refill_rate_w())
        return SmoothedDraw(battery_power_w=battery_w, capacitor_energy_j=from_cap_j,
                            heat_j=heat_j)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Mutable runtime state (the stored voltage)."""
        return pack_state(self, self._STATE_VERSION, {"voltage": self._voltage})

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._voltage = payload["voltage"]

    # ------------------------------------------------------------------
    def _min_energy_j(self) -> float:
        """Keep the rail above half voltage so the regulator holds."""
        v_min = 0.5 * self.rated_voltage
        return 0.5 * self.capacitance_f * v_min ** 2

    def _refill_rate_w(self) -> float:
        return self.refill_power_w

    def _set_energy(self, energy_j: float) -> None:
        energy_j = max(0.0, energy_j)
        self._voltage = math.sqrt(2.0 * energy_j / self.capacitance_f)
        self._voltage = min(self._voltage, self.rated_voltage)


@dataclass(frozen=True)
class SmoothedDraw:
    """Result of filtering one timestep of demand through the buffer."""

    #: Power the battery must deliver this step (W).
    battery_power_w: float
    #: Energy served from the capacitor (J).
    capacitor_energy_j: float
    #: ESR heat dissipated (J).
    heat_j: float
