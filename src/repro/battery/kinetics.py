"""Elementwise battery physics kernels shared by scalar and fleet paths.

Every per-step formula of the KiBaM cell model (OCV shape, resistance
correction, the quadratic power->current solve, rate loss, the two-well
Euler integration, the RC transient relaxation) and the supercapacitor
filter lives here as a *pure elementwise function*: the same code runs
on Python floats (the scalar :class:`~repro.battery.cell.Cell` path)
and on NumPy arrays (the ``repro.fleet`` batch path).

This is the load-bearing trick behind the fleet's bit-for-bit contract
(DESIGN.md section 11).  Sharing one implementation makes the two paths
equal *by construction*: an IEEE-754 add/mul/div/sqrt on a float and on
a float64 array element produce identical bits, so the only way the
paths could diverge is by writing the maths twice.  Three conventions
keep that watertight:

* ``exp`` is always :func:`numpy.exp` -- ``math.exp`` and NumPy's
  vectorised exp disagree in the last ulp on this libm for ~1% of
  inputs, while ``np.exp`` is bitwise self-consistent across scalar,
  size-1 and size-N calls (verified by ``tests/test_physics_kernels``).
* Python's ``min(a, b)`` / ``max(a, b)`` are mirrored by
  :func:`pymin` / :func:`pymax`, which reproduce the builtins' exact
  first-argument-wins tie behaviour (including signed zeros) via a
  single comparison, so branchy scalar code and masked array code
  select identical values.
* ``x ** n`` is spelled out as repeated multiplication: libm ``pow``
  and NumPy's power kernels are not bitwise-identical on all inputs,
  while ``x * x`` is one correctly-rounded operation everywhere.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple, Union

import numpy as np

from .chemistry import RATE_LOSS_CAP

__all__ = [
    "Number",
    "where",
    "pymax",
    "pymin",
    "sqrt",
    "exp",
    "state_of_charge",
    "ocv",
    "internal_resistance",
    "current_for_power",
    "max_power",
    "sustainable_current",
    "rate_loss",
    "well_substeps",
    "well_substeps_array",
    "step_wells",
    "transient_alpha",
    "step_transient",
    "supercap_smooth",
]

#: A kernel operand: a Python float or a float64 NumPy array.
Number = Union[float, np.ndarray]


# ----------------------------------------------------------------------
# Dispatch helpers
# ----------------------------------------------------------------------
def where(cond, a: Number, b: Number) -> Number:
    """``a`` where ``cond`` else ``b``; ternary on scalars, masked on arrays."""
    if isinstance(cond, np.ndarray):
        return np.where(cond, a, b)
    return a if cond else b


def pymax(a: Number, b: Number) -> Number:
    """Exact elementwise mirror of Python's ``max(a, b)``.

    ``max(a, b)`` returns ``b`` only when ``b > a`` -- ties (including
    ``+0.0`` vs ``-0.0``) keep the first argument.  One comparison
    reproduces that on floats and arrays alike.
    """
    return where(a < b, b, a)


def pymin(a: Number, b: Number) -> Number:
    """Exact elementwise mirror of Python's ``min(a, b)`` (ties keep ``a``)."""
    return where(b < a, b, a)


def sqrt(x: Number) -> Number:
    """IEEE square root; ``math.sqrt`` and ``np.sqrt`` agree bitwise."""
    if isinstance(x, np.ndarray):
        return np.sqrt(x)
    return math.sqrt(x)


def exp(x: Number) -> Number:
    """``np.exp`` for every caller (see module docstring).

    Scalar results are converted back to Python ``float`` (a lossless,
    bit-preserving cast) so NumPy scalar types never leak into the
    object-graph scalar path.
    """
    if isinstance(x, np.ndarray):
        return np.exp(x)
    return float(np.exp(x))


# ----------------------------------------------------------------------
# Cell electrical behaviour
# ----------------------------------------------------------------------
def state_of_charge(available: Number, bound: Number, capacity_amp_s: Number) -> Number:
    """Remaining charge fraction, clamped to [0, 1]."""
    s = (available + bound) / capacity_amp_s
    return pymax(0.0, pymin(1.0, s))


def ocv(soc: Number, cutoff_v: Number, full_v: Number) -> Number:
    """Open-circuit voltage from state of charge (generic Li-ion shape)."""
    s = soc
    s2 = s * s
    shape = 0.18 + 0.72 * s + 0.10 * (s2 * s2) - 0.18 * exp(-24.0 * s)
    shape = pymax(0.0, pymin(1.0, shape))
    return cutoff_v + (full_v - cutoff_v) * shape


def internal_resistance(
    soc: Number, temp_c: Number, r0: Number, temp_coeff: Number
) -> Number:
    """Ohmic resistance with temperature and empty-cell corrections (ohm)."""
    r = r0 * (1.0 + temp_coeff * (temp_c - 25.0))
    e = 1.0 - soc
    r = r * (1.0 + 0.8 * (e * e))
    return pymax(r, 1e-4)


def current_for_power(power_w: Number, veff: Number, r: Number) -> Number:
    """Solve ``I * (veff - I r) = P``; MPP current when P is unreachable."""
    disc = veff * veff - 4.0 * r * power_w
    i_mpp = veff / (2.0 * r)
    root = (veff - sqrt(pymax(disc, 0.0))) / (2.0 * r)
    i = where(disc < 0.0, i_mpp, root)
    return where(power_w <= 0.0, 0.0, i)


def max_power(veff: Number, r: Number, max_current: Number) -> Number:
    """Largest deliverable power at the current-limited operating point (W)."""
    i_mpp = veff / (2.0 * r)
    i = pymin(i_mpp, max_current)
    return i * (veff - i * r)


def sustainable_current(bound: Number, c: Number, k: Number) -> Number:
    """KiBaM replenishment current ``k * y2 / (1 - c)`` (A)."""
    return k * bound / (1.0 - c)


def rate_loss(current: Number, i_sus: Number, coeff: Number) -> Number:
    """Extra loss fraction for draws beyond the sustainable rate."""
    strained = i_sus <= 1e-12
    ratio = current / where(strained, 1.0, i_sus)
    extra = coeff * (ratio * ratio)
    loss = pymin(RATE_LOSS_CAP, extra)
    loss = where(strained, RATE_LOSS_CAP, loss)
    return where(current <= 0.0, 0.0, loss)


# ----------------------------------------------------------------------
# KiBaM well integration
# ----------------------------------------------------------------------
def well_substeps(dt: float, c: float, k: float) -> int:
    """Explicit-Euler substep count keeping the well ODEs stable."""
    k_eff = k * (1.0 / c + 1.0 / (1.0 - c))
    max_sub = 0.2 / k_eff if k_eff > 0 else dt
    steps = max(1, int(math.ceil(dt / max(max_sub, 1e-6))))
    return min(steps, 10_000)


def well_substeps_array(dt: np.ndarray, c: np.ndarray, k: np.ndarray) -> np.ndarray:
    """Vector twin of :func:`well_substeps` (same counts, int64 array)."""
    k_eff = k * (1.0 / c + 1.0 / (1.0 - c))
    positive = k_eff > 0
    max_sub = np.where(positive, 0.2 / np.where(positive, k_eff, 1.0), dt)
    steps = np.ceil(dt / np.maximum(max_sub, 1e-6))
    return np.minimum(np.maximum(steps, 1), 10_000).astype(np.int64)


def step_wells(
    y1: Number, y2: Number, current: Number, h: Number, steps: int,
    c: Number, k: Number,
) -> Tuple[Number, Number]:
    """``steps`` Euler substeps of length ``h`` of the two-well ODEs.

    Callers supply ``h = dt / steps`` with ``steps`` from
    :func:`well_substeps`; rows sharing a substep count may batch with
    per-row ``h``/``c``/``k`` arrays.
    """
    for _ in range(steps):
        flow = k * (y2 / (1.0 - c) - y1 / c)
        y1 = y1 + h * (-current + flow)
        y2 = y2 + h * (-flow)
        y1 = where(y1 < 0.0, 0.0, y1)
    return y1, pymax(0.0, y2)


# ----------------------------------------------------------------------
# RC transient branch
# ----------------------------------------------------------------------
_ALPHA_CACHE: Dict[Tuple[float, float], float] = {}


def transient_alpha(dt: float, tau: float) -> float:
    """Memoised ``exp(-dt / tau)`` decay factor (scalar hot path).

    Computed with ``np.exp`` so the cached scalar equals the batch
    path's per-element value bitwise; memoised because a discharge
    cycle reuses a handful of (dt, tau) pairs millions of times.
    """
    key = (dt, tau)
    alpha = _ALPHA_CACHE.get(key)
    if alpha is None:
        alpha = float(np.exp(-dt / tau))
        if len(_ALPHA_CACHE) < 65536:
            _ALPHA_CACHE[key] = alpha
    return alpha


def step_transient(v_transient: Number, current: Number, r1: Number,
                   alpha: Number) -> Number:
    """Relax the RC branch toward ``I * R1`` with decay factor ``alpha``."""
    target = current * r1
    return target + (v_transient - target) * alpha


# ----------------------------------------------------------------------
# Supercapacitor filter
# ----------------------------------------------------------------------
def supercap_smooth(
    demand_w: Number, dt: Number, voltage: Number,
    capacitance_f: Number, rated_voltage: Number, esr_ohm: Number,
    refill_power_w: Number,
) -> Tuple[Number, Number, Number, Number]:
    """One step of the LITTLE-rail supercap filter.

    Returns ``(battery_power_w, capacitor_energy_j, heat_j,
    new_voltage)`` -- the functional form of
    :meth:`repro.battery.supercap.Supercapacitor.smooth`, which
    delegates here so the scalar object and the fleet arrays run the
    same arithmetic.
    """
    stored = 0.5 * capacitance_f * (voltage * voltage)
    full = 0.5 * capacitance_f * (rated_voltage * rated_voltage)
    v_min = 0.5 * rated_voltage
    floor = 0.5 * capacitance_f * (v_min * v_min)
    headroom = pymax(0.0, full - stored)

    burst = demand_w > refill_power_w

    # Burst branch: serve the surplus above the refill budget from the
    # capacitor, down to the rail floor, with ESR heat billed to it.
    surplus_w = demand_w - refill_power_w
    want_j = surplus_w * dt
    usable_j = pymax(0.0, stored - floor)
    from_cap_j = pymin(want_j, usable_j)
    drew = where(burst, from_cap_j > 0.0, False)
    i = from_cap_j / dt / pymax(voltage, 0.5)
    draw_heat_j = i * i * esr_ohm * dt
    drained = pymax(floor, stored - from_cap_j - draw_heat_j)
    v_burst = pymin(sqrt(2.0 * pymax(0.0, drained) / capacitance_f),
                    rated_voltage)
    battery_burst = demand_w - from_cap_j / dt

    # Refill branch: spend leftover budget recharging toward rated.
    refill_w = pymin(refill_power_w - demand_w, refill_power_w)
    refilling = where(burst, False, (refill_w > 0.0) & (headroom > 0.0))
    add_j = pymin(refill_w * dt, headroom)
    v_refill = pymin(sqrt(2.0 * pymax(0.0, stored + add_j) / capacitance_f),
                     rated_voltage)
    battery_refill = demand_w + add_j / dt

    battery_w = where(burst, battery_burst,
                      where(refilling, battery_refill, demand_w))
    cap_j = where(burst, from_cap_j, 0.0)
    heat_j = where(drew, draw_heat_j, 0.0)
    new_v = where(drew, v_burst, where(refilling, v_refill, voltage))
    return battery_w, cap_j, heat_j, new_v
