"""Charging substrate: a CC-CV charger for the pack models.

The paper scopes its optimisation to "one discharge cycle, i.e.,
duration between two device charges"; closing the loop needs a
charger.  This module implements the standard constant-current /
constant-voltage profile: charge at a C-rate-limited current until the
terminal voltage reaches the chemistry's full voltage, then hold the
voltage and let the current taper; charging ends when the taper falls
below the cutoff fraction.  Charge acceptance is limited by the same
KiBaM diffusion that limits discharge, so a big cell also *charges*
slower -- which matters for the multi-day simulations in
:mod:`repro.sim.daily`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .cell import Cell
from .pack import BigLittlePack, SingleBatteryPack

__all__ = ["ChargeResult", "CCCVCharger"]


@dataclass(frozen=True)
class ChargeResult:
    """Outcome of one charging step."""

    #: Charge accepted by the cell this step (A*s).
    accepted_amp_s: float
    #: Charger output current (A).
    current_a: float
    #: True once the cell is considered full.
    complete: bool


@dataclass
class CCCVCharger:
    """Constant-current / constant-voltage charger.

    Parameters
    ----------
    charge_c_rate:
        CC-phase current in multiples of cell capacity (0.5C default,
        a typical phone charger).
    cutoff_c_rate:
        Charging stops when the CV-phase taper drops below this rate.
    efficiency:
        Fraction of charger output stored (the rest is heat).
    """

    charge_c_rate: float = 0.5
    cutoff_c_rate: float = 0.05
    efficiency: float = 0.97

    def __post_init__(self) -> None:
        if self.charge_c_rate <= 0 or self.cutoff_c_rate <= 0:
            raise ValueError("charge rates must be positive")
        if self.cutoff_c_rate >= self.charge_c_rate:
            raise ValueError("cutoff must be below the CC rate")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must lie in (0, 1]")

    # ------------------------------------------------------------------
    def step_cell(self, cell: Cell, dt: float) -> ChargeResult:
        """Advance one charging step on a single cell."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        soc = cell.state_of_charge
        if soc >= 1.0 - 1e-9:
            cell.rest(dt)
            return ChargeResult(0.0, 0.0, True)

        cc_current = self.charge_c_rate * cell.capacity_mah / 1000.0
        # CV taper: as the cell approaches full the acceptable current
        # falls roughly exponentially; model with a knee at ~85% SoC.
        if soc < 0.85:
            current = cc_current
        else:
            taper = math.exp(-(soc - 0.85) / 0.05)
            current = max(cc_current * taper,
                          self.cutoff_c_rate * cell.capacity_mah / 1000.0)

        headroom = cell.capacity_amp_s - cell.charge_amp_s
        accepted = min(current * dt * self.efficiency, headroom)
        self._accept(cell, accepted, dt)
        return ChargeResult(accepted, current, cell.state_of_charge >= 0.999)

    def charge_cell(self, cell: Cell, max_hours: float = 8.0,
                    dt: float = 30.0) -> float:
        """Charge a cell to full; returns the wall time needed (s)."""
        t = 0.0
        while t < max_hours * 3600.0:
            result = self.step_cell(cell, dt)
            t += dt
            if result.complete:
                break
        return t

    def charge_pack(self, pack, max_hours: float = 10.0, dt: float = 30.0) -> float:
        """Charge every cell of a pack (in parallel); returns time (s)."""
        cells = self.cells_of(pack)
        t = 0.0
        while t < max_hours * 3600.0:
            done = True
            for cell in cells:
                if not self.step_cell(cell, dt).complete:
                    done = False
            t += dt
            if done:
                break
        return t

    # ------------------------------------------------------------------
    @staticmethod
    def cells_of(pack) -> list:
        """The chargeable cells of a pack, in pack order.

        Supports the big.LITTLE and single-battery packs plus any pack
        exposing a ``cells`` sequence.
        """
        if isinstance(pack, BigLittlePack):
            return [pack.big, pack.little]
        if isinstance(pack, SingleBatteryPack):
            return [pack.cell]
        if hasattr(pack, "cells"):
            return list(pack.cells)
        raise TypeError(f"cannot charge pack of type {type(pack).__name__}")

    #: Backward-compatible alias for the historical private name.
    _cells_of = cells_of

    @staticmethod
    def _accept(cell: Cell, accepted_amp_s: float, dt: float) -> None:
        """Deposit accepted charge into the KiBaM wells.

        Charge enters through the available well (the electrode
        surface) and diffuses into the bound well over time -- the
        mirror of discharge.  Overfill of the available well spills
        directly into the bound well.
        """
        c = cell.chemistry.kibam_c
        cap_available = cell.capacity_amp_s * c
        into_available = min(accepted_amp_s,
                             max(0.0, cap_available - cell._available))
        cell._available += into_available
        cell._bound += accepted_amp_s - into_available
        cell._bound = min(cell._bound, cell.capacity_amp_s * (1.0 - c))
        # Let the wells equilibrate over the step.
        cell.rest(dt)
