"""V-edge voltage dynamics and the D1/D2/D3 saving-potential analysis.

Paper Figure 3 (after Xu et al., NSDI'13): when a power demand arrives,
the battery output voltage first drops quickly, then settles at a level
below the initial voltage -- the *V-edge*.  Comparing the measured curve
against the ideal rectangular response splits the response into three
areas:

* ``D1`` -- the extra ohmic/transient sag paid at the step (loss),
* ``D2`` -- the ideal plateau consumption,
* ``D3`` -- the recovery headroom after the step ends (potential gain).

The saving potential CAPMAN exploits is ``D3 - D1``: a LITTLE battery
minimises D1 (small sag on bursts), a big battery maximises D3 (deep
recovery during long plateaus).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .cell import Cell

__all__ = ["VEdgeTrace", "VEdgeAnalysis", "simulate_step_response", "analyze_vedge"]


@dataclass(frozen=True)
class VEdgeTrace:
    """Sampled terminal voltage around one load step."""

    times: Tuple[float, ...]
    voltages: Tuple[float, ...]
    #: Voltage just before the step was applied.
    initial_voltage: float
    #: Power of the step (W) and its duration (s).
    step_power_w: float
    step_duration_s: float


@dataclass(frozen=True)
class VEdgeAnalysis:
    """Areas (volt-seconds) of the Figure 3 decomposition."""

    d1: float
    d2: float
    d3: float

    @property
    def saving_potential(self) -> float:
        """The exploitable area ``D3 - D1`` (may be negative)."""
        return self.d3 - self.d1


def simulate_step_response(
    cell: Cell,
    step_power_w: float,
    step_duration_s: float,
    rest_duration_s: float,
    dt: float = 0.05,
    inrush_factor: float = 2.5,
    inrush_s: float = 1.0,
) -> VEdgeTrace:
    """Apply a power step to ``cell`` and record the terminal voltage.

    Real demand steps (app launch, screen wake) open with a short
    *inrush* above the settled level -- that is what produces the
    V-edge: a quick deep drop, then a rise to a plateau below the
    initial voltage.  ``inrush_factor``/``inrush_s`` shape the spike;
    set the factor to 1 for a pure rectangle.

    The cell is mutated; pass ``cell.clone()`` to keep the original.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    if inrush_factor < 1.0:
        raise ValueError("inrush_factor must be >= 1")
    times: List[float] = []
    volts: List[float] = []
    v0 = cell.terminal_voltage()
    t = 0.0
    while t < step_duration_s:
        power = step_power_w
        if t < inrush_s:
            power = step_power_w * inrush_factor
        res = cell.draw_power(power, dt)
        t += dt
        times.append(t)
        volts.append(res.voltage_v)
    while t < step_duration_s + rest_duration_s:
        cell.rest(dt)
        t += dt
        times.append(t)
        volts.append(cell.terminal_voltage())
    return VEdgeTrace(tuple(times), tuple(volts), v0, step_power_w, step_duration_s)


def _trapezoid(xs: Sequence[float], ys: Sequence[float]) -> float:
    total = 0.0
    for i in range(1, len(xs)):
        total += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1])
    return total


def analyze_vedge(trace: VEdgeTrace) -> VEdgeAnalysis:
    """Decompose a step response into the D1/D2/D3 areas of Figure 3.

    The *ideal* response is a rectangle: voltage stays at the settled
    plateau level during the step and returns to the initial voltage
    instantly afterwards.

    * ``D1`` is the area between the ideal plateau and the actual sag
      during the step (extra transient loss).
    * ``D2`` is the plateau deficit itself (initial minus settled level,
      integrated over the step) -- the unavoidable consumption.
    * ``D3`` is the area between the initial voltage and the actual
      recovery curve after the step (headroom a scheduler can reuse).
    """
    on_times = [t for t in trace.times if t <= trace.step_duration_s]
    n_on = len(on_times)
    on_v = trace.voltages[:n_on]
    off_times = trace.times[n_on:]
    off_v = trace.voltages[n_on:]
    if not on_v:
        raise ValueError("trace contains no samples during the step")

    plateau = on_v[-1]
    v0 = trace.initial_voltage

    # D1: sag below the settled plateau while the load is applied.
    d1 = _trapezoid(on_times, [max(0.0, plateau - v) for v in on_v])
    # D2: ideal plateau deficit relative to the initial voltage.
    d2 = max(0.0, v0 - plateau) * trace.step_duration_s
    # D3: recovery shortfall after the step (actual below initial).
    if len(off_times) >= 2:
        d3 = _trapezoid(off_times, [max(0.0, v0 - v) for v in off_v])
    else:
        d3 = 0.0
    return VEdgeAnalysis(d1=d1, d2=d2, d3=d3)
