"""Extension: cycle-life aging from the Table I lifetime ratings.

The paper's Table I rates each chemistry's lifetime but the evaluation
stays within single discharge cycles.  This extension projects what a
scheduling policy does to pack health over months: capacity fades
linearly in equivalent full cycles (EOL at 80% per industry
convention), accelerated by heat (a doubling per 10 K over 25 degC,
Arrhenius-style) and by sustained over-rate draw.  It lets a user ask
the question the paper leaves open -- does leaning on the LITTLE
battery wear the pack out faster?
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence

from ..durability.state import pack_state, unpack_state
from .cell import Cell
from .chemistry import Chemistry

__all__ = ["AgingModel", "CellHealth", "project_lifetime"]

#: End-of-life capacity fraction (industry convention).
EOL_FRACTION = 0.8


@dataclass
class CellHealth:
    """Aging state of one cell across many discharge cycles."""

    chemistry: Chemistry
    rated_capacity_mah: float
    equivalent_cycles: float = 0.0

    @property
    def fade_fraction(self) -> float:
        """Capacity lost so far, as a fraction of rated."""
        per_cycle = (1.0 - EOL_FRACTION) / self.chemistry.cycle_life
        return min(1.0, per_cycle * self.equivalent_cycles)

    @property
    def capacity_mah(self) -> float:
        """Usable capacity after fade."""
        return self.rated_capacity_mah * (1.0 - self.fade_fraction)

    @property
    def health(self) -> float:
        """State of health in [0, 1] relative to the EOL window."""
        return max(0.0, 1.0 - self.fade_fraction / (1.0 - EOL_FRACTION))

    @property
    def end_of_life(self) -> bool:
        """True once capacity dropped below the EOL fraction."""
        return self.capacity_mah < EOL_FRACTION * self.rated_capacity_mah

    def fresh_cell(self) -> Cell:
        """A new cell at the current (aged) capacity."""
        return Cell(self.chemistry, self.capacity_mah)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Mutable aging state (the equivalent-cycle counter)."""
        return pack_state(self, self._STATE_VERSION,
                          {"equivalent_cycles": self.equivalent_cycles})

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self.equivalent_cycles = payload["equivalent_cycles"]


@dataclass
class AgingModel:
    """Stress-weighted cycle counting.

    Parameters
    ----------
    temp_doubling_k:
        Every this many Kelvin above the reference temperature doubles
        the aging rate.
    rate_stress_weight:
        Extra equivalent-cycle weight per unit of (I / I_sustainable)
        above 1 -- sustained over-rate draw wears power cells.
    reference_temp_c:
        Temperature at which stress factors are 1.
    """

    temp_doubling_k: float = 10.0
    rate_stress_weight: float = 0.5
    reference_temp_c: float = 25.0

    def stress_factor(self, chemistry: Chemistry, mean_temp_c: float,
                      mean_current_a: float, capacity_mah: float) -> float:
        """Multiplier on equivalent cycles for one discharge cycle."""
        thermal = 2.0 ** (
            max(0.0, mean_temp_c - self.reference_temp_c) / self.temp_doubling_k
        )
        i_sus = chemistry.kibam_k * capacity_mah / 1000.0 * 3600.0
        over_rate = max(0.0, mean_current_a / max(i_sus, 1e-9) - 1.0)
        return thermal * (1.0 + self.rate_stress_weight * over_rate)

    def record_cycle(
        self,
        health: CellHealth,
        throughput_amp_s: float,
        mean_temp_c: float = 25.0,
        mean_current_a: float = 0.0,
    ) -> None:
        """Charge one cycle's throughput against a cell's health."""
        if throughput_amp_s < 0:
            raise ValueError("throughput must be non-negative")
        capacity_as = health.rated_capacity_mah / 1000.0 * 3600.0
        base_cycles = throughput_amp_s / capacity_as
        factor = self.stress_factor(
            health.chemistry, mean_temp_c, mean_current_a,
            health.rated_capacity_mah,
        )
        health.equivalent_cycles += base_cycles * factor


def project_lifetime(
    chemistry: Chemistry,
    capacity_mah: float,
    daily_throughput_amp_s: float,
    mean_temp_c: float = 25.0,
    mean_current_a: float = 0.0,
    model: AgingModel = AgingModel(),
) -> float:
    """Days until end of life under a constant daily usage pattern."""
    if daily_throughput_amp_s <= 0:
        raise ValueError("daily throughput must be positive")
    health = CellHealth(chemistry, capacity_mah)
    capacity_as = capacity_mah / 1000.0 * 3600.0
    daily_cycles = daily_throughput_amp_s / capacity_as
    factor = model.stress_factor(chemistry, mean_temp_c, mean_current_a,
                                 capacity_mah)
    cycles_to_eol = chemistry.cycle_life
    return cycles_to_eol / (daily_cycles * factor)
