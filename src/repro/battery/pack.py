"""Battery packs: the big.LITTLE pack and the single-cell baseline.

The big.LITTLE pack wires two cells of complementary chemistries behind
the switch facility; the LITTLE rail is filtered by a supercapacitor
(paper Figure 10).  The ``Practice`` baseline of the evaluation is a
single battery with the same total capacity, modelled by
:class:`SingleBatteryPack`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..durability.state import pack_state, unpack_state
from .cell import Cell, DrawResult
from .chemistry import Chemistry, pick_big_little
from .supercap import Supercapacitor
from .switch import BatterySelection, BatterySwitch

__all__ = ["PackDraw", "BatteryPack", "BigLittlePack", "SingleBatteryPack"]


@dataclass(frozen=True)
class PackDraw:
    """Outcome of one timestep of demand served by a pack."""

    #: Energy delivered to the load (J).
    energy_j: float
    #: Heat generated inside the pack this step (J).
    heat_j: float
    #: Rail voltage after the step (V).
    voltage_v: float
    #: True if the pack could not meet the full demand.
    shortfall: bool
    #: Which battery served the demand (None for single-cell packs).
    served_by: Optional[BatterySelection] = None


class BatteryPack:
    """Interface shared by both pack types."""

    def draw(self, power_w: float, dt: float, now_s: float) -> PackDraw:
        """Serve ``power_w`` for ``dt`` seconds starting at ``now_s``."""
        raise NotImplementedError

    @property
    def state_of_charge(self) -> float:
        """Charge remaining across all cells, fraction of rated."""
        raise NotImplementedError

    @property
    def depleted(self) -> bool:
        """True when the pack can no longer serve demand."""
        raise NotImplementedError

    def set_temperature(self, temp_c: float) -> None:
        """Propagate the pack-region temperature to the cells."""
        raise NotImplementedError


@dataclass
class BigLittlePack(BatteryPack):
    """Two heterogeneous cells behind the switch facility.

    Parameters
    ----------
    big, little:
        The two cells.  Defaults build the paper's NCA (big) + LMO
        (LITTLE) pair at 2500 mAh each.
    switch:
        The :class:`~repro.battery.switch.BatterySwitch`; its event log
        doubles as the Figure 9 signal source.
    supercap:
        Filter on the LITTLE rail; ``None`` disables filtering.
    """

    big: Cell = field(default_factory=lambda: Cell(pick_big_little()[0]))
    little: Cell = field(default_factory=lambda: Cell(pick_big_little()[1]))
    switch: BatterySwitch = field(default_factory=BatterySwitch)
    supercap: Optional[Supercapacitor] = field(default_factory=Supercapacitor)

    @classmethod
    def from_chemistries(
        cls,
        big_chem: Chemistry,
        little_chem: Chemistry,
        capacity_mah: float = 2500.0,
        with_supercap: bool = True,
    ) -> "BigLittlePack":
        """Build a pack with ``capacity_mah`` per cell."""
        return cls(
            big=Cell(big_chem, capacity_mah),
            little=Cell(little_chem, capacity_mah),
            switch=BatterySwitch(),
            supercap=Supercapacitor() if with_supercap else None,
        )

    # ------------------------------------------------------------------
    @property
    def active(self) -> BatterySelection:
        """Currently selected battery."""
        return self.switch.active

    @property
    def active_cell(self) -> Cell:
        """The cell behind the active rail."""
        return self.big if self.active is BatterySelection.BIG else self.little

    def cell_for(self, selection: BatterySelection) -> Cell:
        """The cell corresponding to ``selection``."""
        return self.big if selection is BatterySelection.BIG else self.little

    @property
    def state_of_charge(self) -> float:
        total = self.big.capacity_amp_s + self.little.capacity_amp_s
        charge = self.big.charge_amp_s + self.little.charge_amp_s
        return charge / total

    @property
    def depleted(self) -> bool:
        return self.big.depleted and self.little.depleted

    def set_temperature(self, temp_c: float) -> None:
        self.big.temperature_c = temp_c
        self.little.temperature_c = temp_c

    def select(self, target: BatterySelection, now_s: float) -> bool:
        """Ask the switch facility to connect ``target``.

        A request for a depleted cell falls back to the surviving one.
        Returns True if a physical switch event occurred.
        """
        if self.cell_for(target).depleted and not self.cell_for(target.other()).depleted:
            target = target.other()
        return self.switch.request(target, now_s)

    def _can_serve(self, cell: Cell, power_w: float, dt: float) -> bool:
        """Whether a cell can carry ``power_w`` for the whole step."""
        if cell.depleted:
            return False
        if power_w <= 0.0:
            return True
        if cell.max_power_w() < power_w:
            return False
        i_est = power_w / max(cell.terminal_voltage(), 1.0)
        return cell.available_amp_s > i_est * dt * 1.05

    def draw(self, power_w: float, dt: float, now_s: float) -> PackDraw:
        """Serve demand from the active rail.

        The switch facility's comparator watches the rail voltage: if
        the active cell cannot carry the step and the other cell can,
        it fails over before the rail collapses (millisecond-scale
        switching makes this transparent at control-step granularity).
        """
        if not self._can_serve(self.active_cell, power_w, dt):
            other = self.cell_for(self.active.other())
            if self._can_serve(other, power_w, dt) or (
                self.active_cell.depleted and not other.depleted
            ):
                self.switch.request(self.active.other(), now_s)

        served_by = self.active
        cell = self.active_cell
        idle = self.big if cell is self.little else self.little
        heat = self.switch.take_heat_j()
        # Switching losses are real charge: bill any unbilled switch
        # energy as extra rail demand this step.
        overhead_w = self.switch.take_energy_j() / dt
        gross_w = power_w + overhead_w

        battery_power = gross_w
        cap_j = 0.0
        if served_by is BatterySelection.LITTLE and self.supercap is not None:
            smoothed = self.supercap.smooth(gross_w, dt)
            battery_power = smoothed.battery_power_w
            cap_j = smoothed.capacitor_energy_j
            heat += smoothed.heat_j

        result: DrawResult = cell.draw_power(battery_power, dt)
        heat += result.heat_j

        # Energy actually reaching the load: the battery's output net of
        # any supercap refill share, plus what the supercap itself
        # contributed during a burst, minus the switching overhead.
        if cap_j > 0.0:
            load_share_w = battery_power  # all battery output feeds the rail
        else:
            load_share_w = min(gross_w, battery_power)
        if battery_power > 0.0:
            served_fraction = result.energy_j / (battery_power * dt)
        else:
            served_fraction = 1.0
        rail_j = load_share_w * dt * served_fraction + cap_j
        delivered_j = min(power_w * dt, max(0.0, rail_j - overhead_w * dt))
        voltage = result.voltage_v

        # Mid-step failover: if the active cell came up short, the
        # millisecond-scale switch hands the remainder to the other
        # cell within the same control step.
        deficit_j = power_w * dt - delivered_j
        if deficit_j > 1e-9 and self._can_serve(idle, deficit_j / dt, dt):
            self.switch.request(self.active.other(), now_s)
            heat += self.switch.take_heat_j()
            res2 = idle.draw_power(deficit_j / dt, dt)
            if res2.energy_j > delivered_j:
                served_by = self.active
                voltage = res2.voltage_v
            delivered_j += res2.energy_j
            delivered_j = min(delivered_j, power_w * dt)
            heat += res2.heat_j
        else:
            idle.rest(dt)

        shortfall = result.shortfall and self.depleted
        return PackDraw(
            energy_j=delivered_j,
            heat_j=heat,
            voltage_v=voltage,
            shortfall=shortfall,
            served_by=served_by,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Composite state of both cells, the switch, and the supercap."""
        return pack_state(self, self._STATE_VERSION, {
            "big": self.big.state_dict(),
            "little": self.little.state_dict(),
            "switch": self.switch.state_dict(),
            "supercap": (self.supercap.state_dict()
                         if self.supercap is not None else None),
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore in place, mutating the existing child objects."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self.big.load_state_dict(payload["big"])
        self.little.load_state_dict(payload["little"])
        self.switch.load_state_dict(payload["switch"])
        if self.supercap is not None and payload["supercap"] is not None:
            self.supercap.load_state_dict(payload["supercap"])


@dataclass
class SingleBatteryPack(BatteryPack):
    """One cell with the combined capacity (the ``Practice`` baseline)."""

    cell: Cell = field(default_factory=lambda: Cell(pick_big_little()[0], capacity_mah=5000.0))

    @classmethod
    def from_chemistry(cls, chem: Chemistry, capacity_mah: float = 5000.0) -> "SingleBatteryPack":
        """Build a single-battery pack of the given total capacity."""
        return cls(cell=Cell(chem, capacity_mah))

    @property
    def state_of_charge(self) -> float:
        return self.cell.state_of_charge

    @property
    def depleted(self) -> bool:
        return self.cell.depleted

    def set_temperature(self, temp_c: float) -> None:
        self.cell.temperature_c = temp_c

    def draw(self, power_w: float, dt: float, now_s: float) -> PackDraw:
        result = self.cell.draw_power(power_w, dt)
        return PackDraw(
            energy_j=result.energy_j,
            heat_j=result.heat_j,
            voltage_v=result.voltage_v,
            shortfall=result.shortfall and self.cell.depleted,
            served_by=None,
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Composite state delegating to the single cell."""
        return pack_state(self, self._STATE_VERSION,
                          {"cell": self.cell.state_dict()})

    def load_state_dict(self, state: dict) -> None:
        """Restore in place, mutating the existing cell."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self.cell.load_state_dict(payload["cell"])
