"""Electrochemical cell model: KiBaM wells + OCV curve + RC transient.

This is the simulated stand-in for the physical 2500 mAh cells of the
paper's testbed (see DESIGN.md, substitution table).  Three effects the
paper's argument rests on are modelled explicitly:

* **Rate-capacity effect** -- drawing hard strands charge in the bound
  well of the Kinetic Battery Model (KiBaM), so a high-energy-density
  ("big") cell delivers less of its charge under bursty loads.
* **Recovery effect** -- during idle periods the bound well refills the
  available well, so service time depends on demand *shape*, not only
  on total energy (paper Figure 2).
* **V-edge** -- a first-order RC branch makes the terminal voltage drop
  sharply on a load step and then settle at a lower plateau (paper
  Figure 3); the areas between the curves are the power-saving
  opportunity CAPMAN chases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..durability.state import pack_state, unpack_state
from . import kinetics
from .chemistry import Chemistry

__all__ = ["Cell", "DrawResult", "CellEmptyError"]

#: Seconds per hour, used for mAh <-> Coulomb-ish conversions.
_HOUR = 3600.0


class CellEmptyError(RuntimeError):
    """Raised when energy is requested from a depleted cell."""


@dataclass
class DrawResult:
    """Outcome of drawing power from a cell for one timestep."""

    #: Energy actually delivered to the load over the step (J).
    energy_j: float
    #: Average current over the step (A).
    current_a: float
    #: Terminal voltage at the end of the step (V).
    voltage_v: float
    #: Heat dissipated inside the cell over the step (J).
    heat_j: float
    #: True if the cell could not meet the full demand.
    shortfall: bool


@dataclass
class Cell:
    """A single battery cell of a given chemistry.

    Parameters
    ----------
    chemistry:
        The :class:`~repro.battery.chemistry.Chemistry` describing the
        cell's ratings-derived physics.
    capacity_mah:
        Rated capacity at gentle discharge.
    soc:
        Initial state of charge in [0, 1].
    temperature_c:
        Cell temperature; raises internal resistance when hot.
    """

    chemistry: Chemistry
    capacity_mah: float = 2500.0
    soc: float = 1.0
    temperature_c: float = 25.0

    # Internal state (charge bookkeeping in ampere-seconds, A*s).
    _available: float = field(init=False, repr=False)
    _bound: float = field(init=False, repr=False)
    #: Voltage across the RC transient branch (V).
    _v_transient: float = field(init=False, default=0.0, repr=False)
    #: Total charge delivered over the cell's life (A*s), for wear.
    _throughput: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= self.soc <= 1.0:
            raise ValueError("soc must lie in [0, 1]")
        total = self.capacity_amp_s * self.soc
        c = self.chemistry.kibam_c
        self._available = total * c
        self._bound = total * (1.0 - c)
        self._v_transient = 0.0
        self._throughput = 0.0

    # ------------------------------------------------------------------
    # Static properties
    # ------------------------------------------------------------------
    @property
    def capacity_amp_s(self) -> float:
        """Rated charge in ampere-seconds."""
        return self.capacity_mah / 1000.0 * _HOUR

    @property
    def max_current(self) -> float:
        """Continuous current limit from the chemistry's C-rate (A)."""
        return self.chemistry.max_c_rate * self.capacity_mah / 1000.0

    @property
    def charge_amp_s(self) -> float:
        """Remaining charge, both wells (A*s)."""
        return self._available + self._bound

    @property
    def available_amp_s(self) -> float:
        """Charge immediately deliverable from the available well (A*s)."""
        return self._available

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of rated charge in [0, 1]."""
        return kinetics.state_of_charge(
            self._available, self._bound, self.capacity_amp_s)

    @property
    def depleted(self) -> bool:
        """True once the available well is exhausted.

        Charge may remain stranded in the bound well -- that is the
        rate-capacity effect; given rest it migrates back and the cell
        revives (recovery effect).
        """
        return self._available <= 1e-9

    # ------------------------------------------------------------------
    # Electrical behaviour
    # ------------------------------------------------------------------
    def open_circuit_voltage(self) -> float:
        """OCV as a function of state of charge.

        A generic Li-ion shape: a mild linear slope across the plateau,
        an exponential knee near empty, and a rise near full.  Scaled
        into the chemistry's [cutoff, full] voltage window.
        """
        chem = self.chemistry
        return kinetics.ocv(
            self.state_of_charge, chem.cutoff_voltage, chem.full_voltage)

    def internal_resistance(self) -> float:
        """Ohmic resistance, temperature- and SoC-corrected (ohm)."""
        chem = self.chemistry
        return kinetics.internal_resistance(
            self.state_of_charge, self.temperature_c,
            chem.internal_resistance, chem.resistance_temp_coeff)

    def terminal_voltage(self, current_a: float = 0.0) -> float:
        """Terminal voltage under a given instantaneous current (V)."""
        return (
            self.open_circuit_voltage()
            - current_a * self.internal_resistance()
            - self._v_transient
        )

    def current_for_power(self, power_w: float) -> float:
        """Solve ``I * V(I) = P`` for the discharge current (A).

        ``V(I) = OCV - I*R - v_transient`` makes this a quadratic in I;
        the smaller root is the stable operating point.  If the demand
        exceeds the cell's maximum power point the current is clamped at
        the maximum-power current ``(OCV - vt) / (2R)``.
        """
        veff = self.open_circuit_voltage() - self._v_transient
        return kinetics.current_for_power(
            power_w, veff, self.internal_resistance())

    def max_power_w(self) -> float:
        """Largest power the cell can source right now (W)."""
        veff = self.open_circuit_voltage() - self._v_transient
        return kinetics.max_power(
            veff, self.internal_resistance(), self.max_current)

    # ------------------------------------------------------------------
    # Charge management
    # ------------------------------------------------------------------
    def drain_to(self, fraction: float) -> None:
        """Set the remaining charge to ``fraction`` of rated capacity.

        Both KiBaM wells are scaled by the same factor, preserving the
        available/bound split (a cell that "arrives empty" for charging
        keeps its diffusion state shape).  Only draining is allowed --
        use a charger to add charge.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        current = self.charge_amp_s
        target = self.capacity_amp_s * fraction
        if target > current + 1e-9:
            raise ValueError(
                f"drain_to({fraction}) would add charge "
                f"(cell holds {current / self.capacity_amp_s:.3f})"
            )
        scale = target / current if current > 0 else 0.0
        self._available *= scale
        self._bound *= scale

    # ------------------------------------------------------------------
    # Time evolution
    # ------------------------------------------------------------------
    def rest(self, dt: float) -> None:
        """Let the cell idle for ``dt`` seconds (recovery effect)."""
        if dt < 0 or not math.isfinite(dt):
            raise ValueError("dt must be non-negative and finite")
        self._step_wells(0.0, dt)
        self._step_transient(0.0, dt)

    def draw_power(self, power_w: float, dt: float) -> DrawResult:
        """Draw ``power_w`` watts for ``dt`` seconds.

        Returns the energy actually delivered; if the available well
        runs dry mid-step the delivery is pro-rated and ``shortfall``
        is set.
        """
        if not (dt > 0 and math.isfinite(dt)):
            raise ValueError("dt must be positive and finite")
        if power_w < 0 or not math.isfinite(power_w):
            raise ValueError("power must be non-negative and finite")
        if power_w == 0.0:
            self.rest(dt)
            return DrawResult(0.0, 0.0, self.terminal_voltage(), 0.0, False)
        if self.depleted:
            self.rest(dt)
            return DrawResult(0.0, 0.0, self.terminal_voltage(), 0.0, True)

        veff_pre = self.open_circuit_voltage() - self._v_transient
        r_pre = self.internal_resistance()
        current = self.current_for_power(power_w)
        shortfall = False
        if current > self.max_current:
            current = self.max_current
            shortfall = True
        # Power actually reaching the load at this current; equals the
        # demand unless the current was clamped.
        delivered_w = min(power_w, max(0.0, current * (veff_pre - current * r_pre)))
        if delivered_w < power_w * (1.0 - 1e-9):
            shortfall = True

        # Side-reaction losses: the wells lose charge faster than the
        # load receives it (chemistry-dependent coulombic efficiency),
        # and overpotential losses grow quadratically once the draw
        # outruns what the bound well can replenish -- the D1 waste of
        # the paper's V-edge analysis.
        eta = self.chemistry.coulombic_efficiency * (1.0 - self._rate_loss(current))
        drawn = current / eta

        served_dt = dt
        if drawn * dt > self._available:
            served_dt = self._available / drawn
            shortfall = True

        self._step_wells(drawn, served_dt)
        if served_dt < dt:
            self._step_wells(0.0, dt - served_dt)
        self._step_transient(current, served_dt)
        if served_dt < dt:
            self._step_transient(0.0, dt - served_dt)
        self._throughput += current * served_dt

        voltage = self.terminal_voltage(current if served_dt == dt else 0.0)
        if voltage < self.chemistry.cutoff_voltage:
            shortfall = True
        ohmic = current * current * self.internal_resistance() * served_dt
        # Side-reaction charge ends up as heat at roughly the rail voltage.
        parasitic = (drawn - current) * max(voltage, 0.0) * served_dt
        heat = ohmic + parasitic
        energy = delivered_w * served_dt
        return DrawResult(energy, current, voltage, heat, shortfall)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def sustainable_current(self) -> float:
        """Current the bound well can replenish right now (A).

        ``k * y2 / (1 - c)``: declines as the cell empties, so late in
        a cycle even moderate draws become strained.
        """
        return kinetics.sustainable_current(
            self._bound, self.chemistry.kibam_c, self.chemistry.kibam_k)

    def _rate_loss(self, current_a: float) -> float:
        """Extra loss fraction from drawing beyond the sustainable rate."""
        return kinetics.rate_loss(
            current_a, self.sustainable_current(),
            self.chemistry.rate_loss_coeff)

    def _step_wells(self, current_a: float, dt: float) -> None:
        """Integrate the KiBaM two-well ODEs over ``dt``.

        dy1/dt = -I + k (h2 - h1),   dy2/dt = -k (h2 - h1)
        with well heads h1 = y1/c, h2 = y2/(1-c).  Explicit Euler with
        substeps bounded by the diffusion time constant; charge is
        conserved exactly (d(y1+y2)/dt = -I).
        """
        if dt <= 0:
            return
        c = self.chemistry.kibam_c
        k = self.chemistry.kibam_k
        steps = kinetics.well_substeps(dt, c, k)
        self._available, self._bound = kinetics.step_wells(
            self._available, self._bound, current_a, dt / steps, steps, c, k)

    def _step_transient(self, current_a: float, dt: float) -> None:
        """Relax the RC transient branch toward ``I * R1``."""
        r1, tau = self.chemistry.effective_transient()
        if tau <= 0:
            self._v_transient = current_a * r1
            return
        self._v_transient = kinetics.step_transient(
            self._v_transient, current_a, r1, kinetics.transient_alpha(dt, tau))

    def clone(self) -> "Cell":
        """Deep copy of the cell, preserving internal state."""
        other = Cell(self.chemistry, self.capacity_mah, 1.0, self.temperature_c)
        other._available = self._available
        other._bound = self._bound
        other._v_transient = self._v_transient
        other._throughput = self._throughput
        other.soc = self.soc
        return other

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """All mutable runtime state (KiBaM wells, transient, wear)."""
        return pack_state(self, self._STATE_VERSION, {
            "available": self._available,
            "bound": self._bound,
            "v_transient": self._v_transient,
            "throughput": self._throughput,
            "soc": self.soc,
            "temperature_c": self.temperature_c,
            "capacity_mah": self.capacity_mah,
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._available = payload["available"]
        self._bound = payload["bound"]
        self._v_transient = payload["v_transient"]
        self._throughput = payload["throughput"]
        self.soc = payload["soc"]
        self.temperature_c = payload["temperature_c"]
        self.capacity_mah = payload["capacity_mah"]
