"""Battery substrate: chemistries, cells, V-edge, switch, packs."""

from .chemistry import (
    BatteryRole,
    CHEMISTRIES,
    Chemistry,
    FeatureRatings,
    LCO,
    LFP,
    LMO,
    LTO,
    NCA,
    NMC,
    classify,
    orthogonality,
    pick_big_little,
)
from .aging import AgingModel, CellHealth, project_lifetime
from .cell import Cell, CellEmptyError, DrawResult
from .charging import CCCVCharger, ChargeResult
from .multipack import GreedyCellRouter, MixedPack
from .pack import BatteryPack, BigLittlePack, PackDraw, SingleBatteryPack
from .supercap import Supercapacitor
from .switch import BatterySelection, BatterySwitch, SwitchEvent, ttl_signal
from .vedge import VEdgeAnalysis, VEdgeTrace, analyze_vedge, simulate_step_response

__all__ = [
    "BatteryRole",
    "CHEMISTRIES",
    "Chemistry",
    "FeatureRatings",
    "LCO",
    "LFP",
    "LMO",
    "LTO",
    "NCA",
    "NMC",
    "classify",
    "orthogonality",
    "pick_big_little",
    "AgingModel",
    "CellHealth",
    "project_lifetime",
    "CCCVCharger",
    "ChargeResult",
    "Cell",
    "CellEmptyError",
    "DrawResult",
    "GreedyCellRouter",
    "MixedPack",
    "BatteryPack",
    "BigLittlePack",
    "PackDraw",
    "SingleBatteryPack",
    "Supercapacitor",
    "BatterySelection",
    "BatterySwitch",
    "SwitchEvent",
    "ttl_signal",
    "VEdgeAnalysis",
    "VEdgeTrace",
    "analyze_vedge",
    "simulate_step_response",
]
