"""Extension: the fully mixed battery pack the paper stops short of.

Section II argues that "a fully mixed battery pack is complex to
schedule yet hard to reason the optimal scheduling solution" and
restricts the paper to one big + one LITTLE cell.  This module
implements the general case as an extension: an N-cell pack of
arbitrary chemistries behind a multiplexing switch, plus a greedy
marginal-cost router that picks, per step, the cell whose loss model
is cheapest for the demanded power (with a switch penalty and
failover).  It reduces exactly to big.LITTLE behaviour for N = 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .cell import Cell
from .chemistry import Chemistry, RATE_LOSS_CAP
from .pack import PackDraw

__all__ = ["MixedPack", "GreedyCellRouter"]


@dataclass
class MixedPack:
    """An N-cell heterogeneous pack behind a multiplexer.

    Unlike :class:`~repro.battery.pack.BigLittlePack` the switch is a
    simple multiplexer without per-event cost modelling -- the router
    charges an explicit switch penalty instead -- which keeps the
    general pack reusable under arbitrary scheduling policies.
    """

    cells: List[Cell]
    #: Energy dissipated per multiplexer reroute (J).
    switch_energy_j: float = 0.1

    _active: int = field(init=False, default=0, repr=False)
    _switches: int = field(init=False, default=0, repr=False)
    _pending_overhead_j: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("a pack needs at least one cell")
        if self.switch_energy_j < 0:
            raise ValueError("switch energy must be non-negative")

    @classmethod
    def from_chemistries(
        cls, chemistries: Sequence[Chemistry], capacity_mah: float = 2500.0
    ) -> "MixedPack":
        """Build a pack with one ``capacity_mah`` cell per chemistry."""
        return cls(cells=[Cell(chem, capacity_mah) for chem in chemistries])

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Number of cells in the pack."""
        return len(self.cells)

    @property
    def active_index(self) -> int:
        """Index of the cell currently wired to the load."""
        return self._active

    @property
    def switch_count(self) -> int:
        """Committed reroutes."""
        return self._switches

    @property
    def state_of_charge(self) -> float:
        """Pack-wide remaining charge fraction."""
        total = sum(c.capacity_amp_s for c in self.cells)
        charge = sum(c.charge_amp_s for c in self.cells)
        return charge / total

    @property
    def depleted(self) -> bool:
        """True when no cell can serve."""
        return all(c.depleted for c in self.cells)

    def set_temperature(self, temp_c: float) -> None:
        """Propagate the bay temperature to every cell."""
        for cell in self.cells:
            cell.temperature_c = temp_c

    # ------------------------------------------------------------------
    def select(self, index: int) -> bool:
        """Reroute the load to cell ``index``; returns True on a switch."""
        if not 0 <= index < len(self.cells):
            raise IndexError("cell index out of range")
        if index == self._active:
            return False
        self._active = index
        self._switches += 1
        self._pending_overhead_j += self.switch_energy_j
        return True

    def draw(self, power_w: float, dt: float) -> PackDraw:
        """Serve demand from the active cell, failing over if needed."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        overhead_w = self._pending_overhead_j / dt
        self._pending_overhead_j = 0.0
        gross_w = power_w + overhead_w

        order = [self._active] + [
            i for i in range(len(self.cells)) if i != self._active
        ]
        delivered = 0.0
        heat = 0.0
        voltage = 0.0
        for rank, idx in enumerate(order):
            cell = self.cells[idx]
            want_w = gross_w - delivered / dt
            if want_w <= 1e-12 or cell.depleted:
                cell.rest(dt)  # idle cells recover (KiBaM diffusion)
                continue
            if rank > 0:
                # Failover reroute (costs a switch next step).
                self.select(idx)
            res = cell.draw_power(want_w, dt)
            delivered += res.energy_j
            heat += res.heat_j
            voltage = res.voltage_v

        load_j = min(power_w * dt, max(0.0, delivered - overhead_w * dt))
        return PackDraw(
            energy_j=load_j,
            heat_j=heat,
            voltage_v=voltage,
            shortfall=load_j < power_w * dt * 0.98 and power_w > 0,
            served_by=None,
        )


class GreedyCellRouter:
    """Marginal-cost router over a :class:`MixedPack`.

    For each demanded power level it scores every live cell with the
    same loss channels the cell model implements (ohmic, coulombic,
    quadratic rate loss against the cell's *current* sustainable
    replenishment) plus an amortised switch penalty, and routes the
    step to the cheapest cell.  This is the natural N-way extension of
    the big.LITTLE decision; with two complementary cells it reproduces
    the bursts-to-LITTLE / gentle-to-big split.
    """

    def __init__(self, pack: MixedPack, rail_voltage: float = 3.7,
                 switch_penalty_w: float = 0.02) -> None:
        self.pack = pack
        self.rail_voltage = rail_voltage
        self.switch_penalty_w = switch_penalty_w

    def cost_w(self, cell: Cell, power_w: float) -> float:
        """Estimated loss rate of serving ``power_w`` from ``cell``."""
        if power_w <= 0:
            return 0.0
        chem = cell.chemistry
        current = power_w / self.rail_voltage
        ohmic = current * current * cell.internal_resistance()
        i_sus = cell.sustainable_current()
        if i_sus > 1e-12:
            extra = min(RATE_LOSS_CAP, chem.rate_loss_coeff * (current / i_sus) ** 2)
        else:
            extra = RATE_LOSS_CAP
        eta = chem.coulombic_efficiency * (1.0 - extra)
        parasitic = (1.0 / eta - 1.0) * power_w
        return ohmic + parasitic

    def route(self, power_w: float) -> int:
        """Pick the cheapest live cell for the next step."""
        best_idx = self.pack.active_index
        best_cost = float("inf")
        for idx, cell in enumerate(self.pack.cells):
            if cell.depleted:
                continue
            cost = self.cost_w(cell, power_w)
            if idx != self.pack.active_index:
                cost += self.switch_penalty_w
            if cost < best_cost:
                best_cost = cost
                best_idx = idx
        return best_idx

    def step(self, power_w: float, dt: float) -> PackDraw:
        """Route and serve one step."""
        self.pack.select(self.route(power_w))
        return self.pack.draw(power_w, dt)

    def cell_shares(self) -> Dict[str, float]:
        """Remaining SoC per cell, keyed by chemistry name (diagnostic)."""
        return {
            f"{cell.chemistry.name}[{i}]": cell.state_of_charge
            for i, cell in enumerate(self.pack.cells)
        }
