"""The big.LITTLE battery switch facility.

Hardware in the paper (Figures 9-11): an LM339AD voltage comparator
drives two MOSFETs; a raised TTL signal (3.5 V) selects one battery and
a dropped signal (0.3 V) the other, with a 20 kHz oscillator giving
millisecond-scale switching.  Each voltage flip is a switch event and
each switch costs a little energy and injects a heat pulse -- costs the
scheduler must weigh against the benefit of using the better battery.

We model the switch as an object with latency, per-switch energy loss
and heat, plus an optional minimum dwell time; and we reproduce the
Figure 9 TTL signal from the switch event log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Tuple

from ..durability.state import pack_state, unpack_state

__all__ = ["BatterySelection", "SwitchEvent", "BatterySwitch", "ttl_signal"]


class BatterySelection(enum.Enum):
    """Which cell of the pack is wired to the load."""

    BIG = "big"
    LITTLE = "LITTLE"

    def other(self) -> "BatterySelection":
        """The complementary selection."""
        return BatterySelection.LITTLE if self is BatterySelection.BIG else BatterySelection.BIG


@dataclass(frozen=True)
class SwitchEvent:
    """One committed battery switch."""

    time_s: float
    target: BatterySelection


@dataclass
class BatterySwitch:
    """Comparator + MOSFET switch with explicit switching costs.

    Parameters
    ----------
    latency_s:
        Time for a switch to take effect (default 1 ms; the prototype's
        20 kHz oscillator supports millisecond-scale switching).
    switch_energy_j:
        Energy dissipated per switch event in the MOSFETs.
    switch_heat_j:
        Heat pulse injected near the battery per switch event.
    min_dwell_s:
        Debounce: requests arriving sooner than this after the previous
        committed switch are refused (anti-chatter guard).
    """

    latency_s: float = 1e-3
    switch_energy_j: float = 0.1
    switch_heat_j: float = 0.08
    min_dwell_s: float = 0.0
    initial: BatterySelection = BatterySelection.BIG

    _active: BatterySelection = field(init=False, repr=False)
    _last_switch_time: float = field(init=False, default=float("-inf"), repr=False)
    _events: List[SwitchEvent] = field(init=False, default_factory=list, repr=False)
    _energy_spent_j: float = field(init=False, default=0.0, repr=False)
    _heat_emitted_j: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.switch_energy_j < 0 or self.switch_heat_j < 0:
            raise ValueError("switch costs must be non-negative")
        self._active = self.initial

    # ------------------------------------------------------------------
    @property
    def active(self) -> BatterySelection:
        """The currently connected battery."""
        return self._active

    @property
    def switch_count(self) -> int:
        """Number of committed switch events."""
        return len(self._events)

    @property
    def events(self) -> Tuple[SwitchEvent, ...]:
        """Immutable view of the switch log."""
        return tuple(self._events)

    @property
    def energy_spent_j(self) -> float:
        """Total switching energy dissipated so far (J)."""
        return self._energy_spent_j

    @property
    def heat_emitted_j(self) -> float:
        """Total switching heat injected so far (J)."""
        return self._heat_emitted_j

    def request(self, target: BatterySelection, now_s: float) -> bool:
        """Request a switch to ``target`` at time ``now_s``.

        Returns True if a switch event was committed (and its costs
        charged), False if the request was a no-op (already active) or
        refused by the dwell guard.
        """
        if target is self._active:
            return False
        if now_s - self._last_switch_time < self.min_dwell_s:
            return False
        self._active = target
        self._last_switch_time = now_s
        self._events.append(SwitchEvent(now_s, target))
        self._energy_spent_j += self.switch_energy_j
        self._heat_emitted_j += self.switch_heat_j
        return True

    def take_heat_j(self) -> float:
        """Drain the accumulated switching heat (for the thermal model)."""
        heat = self._heat_emitted_j
        self._heat_emitted_j = 0.0
        return heat

    _pending_energy_j: float = field(init=False, default=0.0, repr=False)

    def take_energy_j(self) -> float:
        """Drain the switching energy not yet billed to the pack.

        The pack adds this to the battery draw of the step following
        each switch event -- switching losses are real charge.
        """
        unbilled = self._energy_spent_j - self._pending_energy_j
        self._pending_energy_j = self._energy_spent_j
        return unbilled

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    _STATE_VERSION = 1

    def state_dict(self) -> dict:
        """Mutable runtime state, including fault-mutated switch cost."""
        return pack_state(self, self._STATE_VERSION, {
            "active": self._active.value,
            "last_switch_time": self._last_switch_time,
            "events": [(ev.time_s, ev.target.value) for ev in self._events],
            "energy_spent_j": self._energy_spent_j,
            "heat_emitted_j": self._heat_emitted_j,
            "pending_energy_j": self._pending_energy_j,
            # Contact-growth faults mutate the per-switch cost in place.
            "switch_energy_j": self.switch_energy_j,
        })

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` in place."""
        payload = unpack_state(self, state, self._STATE_VERSION)
        self._active = BatterySelection(payload["active"])
        self._last_switch_time = payload["last_switch_time"]
        self._events = [SwitchEvent(t, BatterySelection(v))
                        for t, v in payload["events"]]
        self._energy_spent_j = payload["energy_spent_j"]
        self._heat_emitted_j = payload["heat_emitted_j"]
        self._pending_energy_j = payload["pending_energy_j"]
        self.switch_energy_j = payload["switch_energy_j"]


def ttl_signal(
    events: Tuple[SwitchEvent, ...],
    t_end: float,
    high_v: float = 3.5,
    low_v: float = 0.3,
    initial: BatterySelection = BatterySelection.BIG,
) -> List[Tuple[float, float]]:
    """Reconstruct the Figure 9 TTL control waveform from a switch log.

    The signal starts at the level encoding ``initial`` and flips on
    every switch event; the result is a list of ``(time, volts)``
    breakpoints suitable for a step plot.  BIG is encoded high.
    """
    level = high_v if initial is BatterySelection.BIG else low_v
    points: List[Tuple[float, float]] = [(0.0, level)]
    for ev in events:
        points.append((ev.time_s, level))  # hold until the flip
        level = high_v if ev.target is BatterySelection.BIG else low_v
        points.append((ev.time_s, level))
    points.append((t_end, level))
    return points
