"""``python -m repro.service`` -- serve the sweep API.

Prints one ``listening on http://HOST:PORT`` line (flushed) once the
socket is bound, so wrappers -- the smoke script, the crash-safety
tests -- can scrape the ephemeral port and then SIGKILL the process
whenever they please: all durability lives in the WAL under
``--root``, and a restart with the same root resumes every unfinished
job without recomputing a committed cell.
"""

from __future__ import annotations

import argparse
import sys

from .app import DEFAULT_MAX_BODY, CapmanService


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="CAPMAN sweep service (stdlib HTTP, durable job queue)")
    parser.add_argument("--root", required=True,
                        help="state directory (WAL, per-job journals, "
                             "shared result cache)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (0 = ephemeral)")
    parser.add_argument("--cell-workers", type=int, default=1,
                        help="worker processes per sweep "
                             "(CAPMAN_DIST_WORKERS overrides the backend)")
    parser.add_argument("--job-runners", type=int, default=2,
                        help="concurrent jobs")
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY)
    args = parser.parse_args(argv)

    service = CapmanService(
        root=args.root, host=args.host, port=args.port,
        cell_workers=args.cell_workers, job_runners=args.job_runners,
        max_body_bytes=args.max_body_bytes)
    host, port = service.address
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
