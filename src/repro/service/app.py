"""The CAPMAN sweep service: stdlib HTTP over the durable job queue.

``ThreadingHTTPServer`` + a hand-rolled router -- one OS thread per
connection, no runtime dependencies, consistent with the raw-TCP
distributed backend next door.  The surface:

========  ==========================  =======================================
method    path                        purpose
========  ==========================  =======================================
POST      /jobs                       submit a JSON grid; content-hash job ID
GET       /jobs/{id}                  status + live per-cell progress
GET       /jobs/{id}/results          per-cell pickled outcomes (base64)
GET       /jobs/{id}/events           NDJSON progress stream until terminal
GET       /metrics                    service registry + span aggregates
GET       /healthz                    liveness (unauthenticated)
========  ==========================  =======================================

Authentication reuses the distributed protocol's shared secret: when
``CAPMAN_DIST_SECRET`` is set, every route except ``/healthz``
requires ``Authorization: Bearer <secret>`` (constant-time compare).
Every rejection -- bad token, malformed JSON, oversized body, unknown
route -- is a structured ``{"error": {...}}`` body; handler threads
are per-connection, so no request can wedge the listener.

The service owns its *own* :class:`~repro.obs.registry.MetricsRegistry`
(guarded by a lock; the repo registry is single-writer by design)
rather than the process-global obs session, preserving the repo's
obs-off invisibility contract for the sweeps it runs.
"""

from __future__ import annotations

import base64
import hmac
import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..obs.export import registry_snapshot
from ..obs.registry import MetricsRegistry
from ..sim.distributed import SECRET_ENV, protocol_secret
from ..sim.retry import RetryPolicy
from .jobs import DONE, FAILED, JobStore
from .schemas import ApiError, parse_spec

__all__ = ["CapmanService", "ServiceMetrics", "DEFAULT_MAX_BODY"]

#: Request bodies above this are rejected with 413 before parsing.
DEFAULT_MAX_BODY = 8 << 20

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{32})(?:/(results|events))?$")


class ServiceMetrics:
    """Lock-guarded metrics owned by one service instance.

    Wraps a :class:`MetricsRegistry` (whose instruments are not
    themselves synchronised) plus a fold of per-job tracer windows, so
    handler and job-runner threads can all record safely and
    ``/metrics`` serves one consistent snapshot.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._spans: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.registry.counter(name).inc(value)

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.registry.histogram(name).observe(value)

    def merge_spans(self, window: Dict[str, Dict[str, float]]) -> None:
        with self._lock:
            for name, agg in window.items():
                mine = self._spans.get(name)
                if mine is None:
                    self._spans[name] = dict(agg)
                else:
                    mine["count"] += agg["count"]
                    mine["total_s"] += agg["total_s"]
                    mine["max_s"] = max(mine["max_s"], agg["max_s"])

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return registry_snapshot(self.registry, spans=self._spans)


class _Handler(BaseHTTPRequestHandler):
    """Router + structured-error envelope for one connection."""

    server_version = "capman-sweep-service"
    protocol_version = "HTTP/1.1"

    # Quiet: request logging is metrics, not stderr noise.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    @property
    def service(self) -> "CapmanService":
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    # ------------------------------------------------------------------
    def _dispatch(self, method: str) -> None:
        service = self.service
        started = time.monotonic()
        route = "other"
        status = 500
        try:
            route, status = self._route(method)
        except ApiError as err:
            status = err.status
            self._send_json(err.status, err.body())
        except BrokenPipeError:
            # Client went away mid-stream; nothing left to answer.
            status = 499
        except Exception as exc:
            try:
                self._send_json(500, {"error": {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}"}})
            except BrokenPipeError:
                pass
        finally:
            service.metrics.inc(f"http.{route}.requests")
            service.metrics.inc(f"http.{route}.status.{status}")
            service.metrics.observe(f"http.{route}.latency_s",
                                    time.monotonic() - started)

    def _route(self, method: str) -> Tuple[str, int]:
        """Returns ``(route key, status)``; raises ApiError to reject."""
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
            return "healthz", self._send_json(200, {"ok": True})
        self._authenticate()
        if path == "/metrics":
            if method != "GET":
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
            return "metrics", self._send_json(200, self._metrics_body())
        if path == "/jobs":
            if method != "POST":
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
            return "jobs.submit", self._submit()
        match = _JOB_PATH.match(path)
        if match is not None:
            if method != "GET":
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on {path}")
            job_id, sub = match.group(1), match.group(2)
            if sub == "results":
                return "jobs.results", self._results(job_id)
            if sub == "events":
                return "jobs.events", self._events(job_id)
            return "jobs.status", self._send_json(
                200, self.service.store.status(job_id))
        raise ApiError(404, "not_found", f"no route for {path}")

    # ------------------------------------------------------------------
    def _authenticate(self) -> None:
        secret = self.service.secret
        if secret is None:
            return
        header = self.headers.get("Authorization", "")
        scheme, _, token = header.partition(" ")
        if scheme.lower() != "bearer" or not hmac.compare_digest(
                token.strip().encode(), secret):
            raise ApiError(401, "unauthorized",
                           "missing or invalid bearer token")

    def _read_body(self) -> bytes:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise ApiError(411, "length_required",
                           "Content-Length is required")
        try:
            length = int(length_header)
        except ValueError:
            raise ApiError(400, "invalid_length",
                           f"bad Content-Length {length_header!r}") from None
        if length < 0:
            raise ApiError(400, "invalid_length", "negative Content-Length")
        if length > self.service.max_body_bytes:
            # Answer without draining: the connection closes, the
            # oversized body is never buffered server-side.
            self.close_connection = True
            raise ApiError(413, "body_too_large",
                           f"body of {length} bytes exceeds the "
                           f"{self.service.max_body_bytes}-byte limit")
        return self.rfile.read(length)

    def _submit(self) -> int:
        body = self._read_body()
        try:
            payload = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(400, "invalid_json",
                           f"request body is not JSON: {exc}") from exc
        spec = parse_spec(payload)
        job, created = self.service.store.submit(spec)
        return self._send_json(201 if created else 200, {
            "job_id": job.job_id,
            "created": created,
            "state": job.state,
            "cells": job.n_cells,
        })

    def _results(self, job_id: str) -> int:
        blobs = self.service.store.result_blobs(job_id)
        return self._send_json(200, {
            "job_id": job_id,
            "count": len(blobs),
            "cells": [base64.b64encode(blob).decode("ascii")
                      for blob in blobs],
        })

    def _events(self, job_id: str) -> int:
        """NDJSON progress stream: one status snapshot per line until
        the job reaches a terminal state (close-delimited body)."""
        store = self.service.store
        store.get(job_id)  # 404 before any bytes are committed
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()
        while True:
            snapshot = store.status(job_id)
            self.wfile.write(json.dumps(snapshot, sort_keys=True)
                             .encode("utf-8") + b"\n")
            self.wfile.flush()
            if snapshot["state"] in (DONE, FAILED):
                return 200
            time.sleep(self.service.events_poll_s)

    def _metrics_body(self) -> Dict[str, Any]:
        body = self.service.metrics.snapshot()
        body["jobs"] = self.service.store.counts()
        return body

    def _send_json(self, status: int, body: Dict[str, Any]) -> int:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        return status


class CapmanService:
    """The assembled service: HTTP server + job store + metrics.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`address`).  ``serve_forever`` blocks; ``start`` runs the
    accept loop on a daemon thread for in-process embedding (tests).
    """

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        cell_workers: int = 1,
        job_runners: int = 2,
        max_body_bytes: int = DEFAULT_MAX_BODY,
        events_poll_s: float = 0.05,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.root = Path(root)
        self.metrics = ServiceMetrics()
        self.secret = protocol_secret()
        self.max_body_bytes = max_body_bytes
        self.events_poll_s = events_poll_s
        self.store = JobStore(self.root, cell_workers=cell_workers,
                              job_runners=job_runners,
                              metrics=self.metrics, retry=retry)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "CapmanService":
        """Serve on a background daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="capman-service", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.05)

    def close(self) -> None:
        """Graceful shutdown (the crash path needs none of this)."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.store.close()


#: Re-exported so callers can gate auth the same way the server does.
AUTH_ENV = SECRET_ENV
