"""CAPMAN-as-a-service: the HTTP boundary over the sweep engine.

Clients POST device specs, workload traces and scenario grids as
JSON; the service answers with content-hash-derived job IDs, executes
each grid on the existing sweep engine behind a durable (WAL-backed)
job queue, and serves status, per-cell progress, NDJSON event streams
and byte-identical results back over plain HTTP.  See
:mod:`repro.service.app` for the route table and
:mod:`repro.service.jobs` for the durability model.

Run one with ``python -m repro.service --root /var/lib/capman``.
"""

from .app import AUTH_ENV, CapmanService, ServiceMetrics
from .jobs import DIST_WORKERS_ENV, Job, JobStore, job_id_for
from .schemas import (ApiError, MAX_GRID_CELLS, POLICY_TYPES,
                      WORKLOAD_TYPES, parse_spec)

__all__ = [
    "ApiError",
    "AUTH_ENV",
    "CapmanService",
    "DIST_WORKERS_ENV",
    "Job",
    "JobStore",
    "MAX_GRID_CELLS",
    "POLICY_TYPES",
    "ServiceMetrics",
    "WORKLOAD_TYPES",
    "job_id_for",
    "parse_spec",
]
