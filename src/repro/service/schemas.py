"""JSON wire schemas for the sweep service.

The service boundary accepts plain JSON -- device specs by profile
name, workload traces by generator recipe or inline rows, scenario
grids as the same axes :class:`~repro.sim.sweep.SweepSpec` exposes --
and turns it into a validated spec.  Every rejection is an
:class:`ApiError` carrying an HTTP status and a stable machine code,
so clients get structured errors (``{"error": {"code": ...}}``)
instead of tracebacks, and a malformed request can never wedge the
server.

The registries are deliberately closed-world: a client can only name
policies, workloads and profiles this module lists.  Arbitrary
pickled payloads never cross the HTTP boundary -- the spec is built
server-side from validated scalars, which is what makes the
content-hash job identity (and the shared result cache under it)
safe to share across tenants.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..capman.baselines import (DualPolicy, HeuristicPolicy, PracticePolicy,
                                SchedulingPolicy)
from ..capman.controller import CapmanPolicy
from ..device.phone import DemandSlice
from ..device.profiles import PHONES
from ..device.syscalls import default_vocabulary
from ..sim.sweep import SweepSpec
from ..testing import SlowDualPolicy
from ..workload.base import Segment
from ..workload.generators import (EtaStaticWorkload, GeekbenchWorkload,
                                   IdleWorkload, PCMarkWorkload,
                                   SkewedBurstWorkload, VideoWorkload)
from ..workload.traces import Trace, record_trace

__all__ = [
    "ApiError",
    "POLICY_TYPES",
    "WORKLOAD_TYPES",
    "MAX_GRID_CELLS",
    "MAX_TRACE_SECONDS",
    "parse_spec",
]


class ApiError(Exception):
    """A structured request rejection: HTTP status + machine code."""

    def __init__(self, status: int, code: str, message: str,
                 detail: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.detail = detail or {}

    def body(self) -> Dict[str, Any]:
        """The JSON error envelope served to the client."""
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail:
            error["detail"] = self.detail
        return {"error": error}


#: Policies a client may instantiate, by wire name.  Keyword arguments
#: map straight onto the dataclass init fields ("capacity_mah" etc.);
#: "slow_dual" is the wall-time-burning test double the crash drills
#: submit so a SIGKILL lands mid-sweep.
POLICY_TYPES: Dict[str, type] = {
    "practice": PracticePolicy,
    "dual": DualPolicy,
    "heuristic": HeuristicPolicy,
    "capman": CapmanPolicy,
    "slow_dual": SlowDualPolicy,
}

#: Workload generators a client may record traces from, by wire name.
WORKLOAD_TYPES: Dict[str, type] = {
    "geekbench": GeekbenchWorkload,
    "pcmark": PCMarkWorkload,
    "video": VideoWorkload,
    "eta_static": EtaStaticWorkload,
    "idle": IdleWorkload,
    "skewed_burst": SkewedBurstWorkload,
}

#: Hard ceiling on the expanded grid of one job.
MAX_GRID_CELLS = 4096

#: Hard ceiling on one recorded/inline trace (simulated seconds).
MAX_TRACE_SECONDS = 48.0 * 3600.0

#: Fields an inline trace row must carry (the Trace.save format).
_ROW_FIELDS = ("duration_s", "syscall", "cpu_util", "freq_index",
               "screen_on", "brightness", "wifi_kbps")


def _bad(message: str, code: str = "invalid_spec",
         **detail: Any) -> ApiError:
    return ApiError(400, code, message, detail or None)


def _require_mapping(obj: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise _bad(f"{what} must be a JSON object, got "
                   f"{type(obj).__name__}")
    return obj


def _require_number(obj: Any, what: str) -> float:
    if isinstance(obj, bool) or not isinstance(obj, (int, float)):
        raise _bad(f"{what} must be a number, got {type(obj).__name__}")
    return float(obj)


def _construct(cls: type, kwargs: Dict[str, Any], what: str) -> Any:
    """Instantiate a registry class, folding bad kwargs into ApiError."""
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise _bad(f"bad arguments for {what}: {exc}",
                   arguments=sorted(kwargs)) from exc
    except ValueError as exc:
        raise _bad(f"bad value for {what}: {exc}") from exc


# ----------------------------------------------------------------------
# Axis parsers
# ----------------------------------------------------------------------
def parse_policy(name: str, obj: Any) -> SchedulingPolicy:
    """One ``{"type": ..., <kwargs>}`` policy description."""
    obj = _require_mapping(obj, f"policy {name!r}")
    kind = obj.get("type")
    if kind not in POLICY_TYPES:
        raise _bad(f"unknown policy type {kind!r} for policy {name!r}",
                   code="unknown_policy",
                   known=sorted(POLICY_TYPES))
    kwargs = {k: v for k, v in obj.items() if k != "type"}
    return _construct(POLICY_TYPES[kind], kwargs, f"policy {name!r}")


def _parse_trace_rows(name: str, rows: Any) -> Trace:
    if not isinstance(rows, list) or not rows:
        raise _bad(f"trace {name!r} rows must be a non-empty array")
    vocab = default_vocabulary()
    segments: List[Segment] = []
    total = 0.0
    for i, row in enumerate(rows):
        row = _require_mapping(row, f"trace {name!r} row {i}")
        missing = [f for f in _ROW_FIELDS if f not in row]
        if missing:
            raise _bad(f"trace {name!r} row {i} is missing fields",
                       missing=missing)
        syscall = None
        if row["syscall"] is not None:
            try:
                syscall = vocab.lookup(str(row["syscall"]))
            except KeyError:
                raise _bad(f"trace {name!r} row {i} names unknown "
                           f"syscall {row['syscall']!r}",
                           code="unknown_syscall") from None
        duration = _require_number(row["duration_s"],
                                   f"trace {name!r} row {i} duration_s")
        try:
            segments.append(Segment(
                DemandSlice(
                    cpu_util=_require_number(row["cpu_util"], "cpu_util"),
                    freq_index=int(row["freq_index"]),
                    screen_on=bool(row["screen_on"]),
                    brightness=_require_number(row["brightness"],
                                               "brightness"),
                    wifi_kbps=_require_number(row["wifi_kbps"],
                                              "wifi_kbps"),
                ),
                duration,
                syscall,
            ))
        except (TypeError, ValueError) as exc:
            raise _bad(f"trace {name!r} row {i} is invalid: {exc}") from exc
        total += duration
    if total > MAX_TRACE_SECONDS:
        raise _bad(f"trace {name!r} spans {total:.0f} simulated seconds "
                   f"(limit {MAX_TRACE_SECONDS:.0f})",
                   code="trace_too_long")
    return Trace(segments, name=str(name))


def parse_trace(name: str, obj: Any) -> Trace:
    """One trace description: a workload recipe or inline rows.

    ``{"workload": "video", "seed": 5, "duration_s": 120}`` records
    the named generator deterministically server-side;
    ``{"rows": [...]}`` carries explicit Trace.save()-format rows.
    """
    obj = _require_mapping(obj, f"trace {name!r}")
    if "rows" in obj:
        return _parse_trace_rows(name, obj["rows"])
    kind = obj.get("workload")
    if kind not in WORKLOAD_TYPES:
        raise _bad(f"unknown workload {kind!r} for trace {name!r}",
                   code="unknown_workload",
                   known=sorted(WORKLOAD_TYPES))
    duration = _require_number(obj.get("duration_s"),
                               f"trace {name!r} duration_s")
    if not 0.0 < duration <= MAX_TRACE_SECONDS:
        raise _bad(f"trace {name!r} duration_s must be in "
                   f"(0, {MAX_TRACE_SECONDS:.0f}]",
                   code="trace_too_long" if duration > 0 else "invalid_spec")
    kwargs = {k: v for k, v in obj.items()
              if k not in ("workload", "duration_s")}
    workload = _construct(WORKLOAD_TYPES[kind], kwargs, f"trace {name!r}")
    trace = record_trace(workload, duration)
    return Trace(trace.segments, name=str(name))


def _parse_axis(payload: Mapping[str, Any], key: str,
                parser: Callable[[str, Any], Any]) -> Dict[str, Any]:
    axis = payload.get(key)
    if not isinstance(axis, Mapping) or not axis:
        raise _bad(f"{key} must be a non-empty JSON object")
    out: Dict[str, Any] = {}
    for name, obj in axis.items():
        out[str(name)] = parser(str(name), obj)
    return out


def _parse_profiles(payload: Mapping[str, Any]) -> Dict[str, Any]:
    names = payload.get("profiles", ["Nexus"])
    if isinstance(names, str):
        names = [names]
    if not isinstance(names, list) or not names:
        raise _bad("profiles must be a non-empty array of profile names")
    out: Dict[str, Any] = {}
    for name in names:
        if name not in PHONES:
            raise ApiError(400, "unknown_profile",
                           f"unknown device profile {name!r}",
                           {"known": sorted(PHONES)})
        out[str(name)] = PHONES[name]
    return out


def _parse_floats(payload: Mapping[str, Any], key: str,
                  default: Tuple[float, ...]) -> Tuple[float, ...]:
    values = payload.get(key)
    if values is None:
        return default
    if isinstance(values, (int, float)) and not isinstance(values, bool):
        values = [values]
    if not isinstance(values, list) or not values:
        raise _bad(f"{key} must be a number or non-empty array of numbers")
    return tuple(_require_number(v, f"{key}[{i}]")
                 for i, v in enumerate(values))


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def parse_spec(payload: Any) -> SweepSpec:
    """A validated :class:`SweepSpec` from one submitted JSON body."""
    payload = _require_mapping(payload, "request body")
    kind = payload.get("kind", "discharge")
    if kind not in ("discharge", "daily"):
        raise _bad(f"unknown sweep kind {kind!r}")
    policies = _parse_axis(payload, "policies", parse_policy)
    traces = _parse_axis(payload, "traces", parse_trace)
    profiles = _parse_profiles(payload)
    control_dts = _parse_floats(payload, "control_dts", (2.0,))
    ambients = _parse_floats(payload, "ambients_c", (25.0,))
    max_duration = _require_number(
        payload.get("max_duration_s", 3.0 * 3600.0), "max_duration_s")
    record_every = payload.get("record_every", 1)
    if isinstance(record_every, bool) or not isinstance(record_every, int) \
            or record_every < 1:
        raise _bad("record_every must be a positive integer")
    extra = payload.get("extra", {})
    extra = dict(_require_mapping(extra, "extra"))
    n_cells = (len(policies) * len(traces) * len(profiles)
               * len(control_dts) * len(ambients))
    if n_cells > MAX_GRID_CELLS:
        raise _bad(f"grid expands to {n_cells} cells "
                   f"(limit {MAX_GRID_CELLS})", code="grid_too_large")
    try:
        return SweepSpec(
            policies=policies, traces=traces, profiles=profiles,
            control_dts=control_dts, ambients_c=ambients, kind=str(kind),
            max_duration_s=max_duration, record_every=record_every,
            extra=extra)
    except ValueError as exc:
        raise _bad(str(exc)) from exc
