"""Durable job queue over the sweep engine.

A :class:`JobStore` owns everything between "the HTTP handler parsed a
spec" and "a sweep result exists":

* **Identity.**  A job ID is derived from the content hashes of the
  grid's expanded cells (:func:`job_id_for`), so the same grid
  submitted by any client at any time *is* the same job -- duplicate
  submissions return the existing record with zero recomputation, and
  overlapping-but-different grids still dedupe cell-wise through the
  shared :class:`~repro.sim.sweep.SweepCache`.

* **Durability.**  Every accepted job is journalled to a
  :class:`~repro.durability.journal.RunJournal` WAL (``jobs.journal``)
  *before* the submitter is acked, and its terminal state is a second
  record.  Each job's sweep additionally runs under its own per-job
  run journal, so a SIGKILLed server restarts, replays the WAL,
  re-enqueues every unfinished job and resumes each sweep without
  recomputing a single committed cell.

* **Execution.**  Runner threads drain a FIFO queue and drive
  :meth:`~repro.sim.sweep.ScenarioRunner.run_or_resume` -- the
  :class:`~repro.sim.executors.LocalProcessExecutor` by default, or
  the distributed TCP backend when ``CAPMAN_DIST_WORKERS`` is set.

The store never touches the process-global observability session:
request/queue metrics go to the service-owned registry handed in by
the app, keeping the repo's obs-off invisibility guarantees intact.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..durability.journal import RunJournal, decode_blob, encode_blob
from ..obs.tracer import Tracer
from ..sim.executors import SweepExecutor
from ..sim.retry import RetryPolicy
from ..sim.sweep import (ScenarioRunner, SweepCache, SweepResult, SweepSpec,
                         cell_key, code_salt)
from .schemas import ApiError

__all__ = ["Job", "JobStore", "job_id_for", "DIST_WORKERS_ENV"]

#: Set to a positive worker count to execute service jobs on the
#: distributed TCP backend (spawned local worker subprocesses) instead
#: of the in-process pool.
DIST_WORKERS_ENV = "CAPMAN_DIST_WORKERS"

#: Job lifecycle states (the service's state machine; see DESIGN §15).
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


def job_id_for(spec: SweepSpec, salt: Optional[str] = None) -> str:
    """Content-hash job identity: the grid *is* the ID.

    Hashes the sorted cell keys (plus the sweep kind) under the same
    code-version salt the result cache uses, so two textually
    different requests that expand to the same physics share one job,
    and a code change mints fresh identities instead of serving stale
    results.
    """
    salt = salt if salt is not None else code_salt()
    digest = hashlib.sha256()
    digest.update(spec.kind.encode())
    for key in sorted(cell_key(cell, salt) for cell in spec.expand()):
        digest.update(key.encode())
    return digest.hexdigest()[:32]


@dataclass
class Job:
    """One submitted grid and everything known about its execution."""

    job_id: str
    spec: SweepSpec
    state: str = QUEUED
    error: Optional[str] = None
    n_cells: int = 0
    submitted_monotonic: float = 0.0
    #: Live runner while executing (its progress() feeds pollers).
    runner: Optional[ScenarioRunner] = field(default=None, repr=False)
    result: Optional[SweepResult] = field(default=None, repr=False)
    #: Stats dict frozen at completion (survives in-memory only; a
    #: recovered done job rebuilds it when results are materialised).
    stats: Optional[Dict[str, Any]] = field(default=None, repr=False)


class JobStore:
    """Journal-backed job registry + runner pool (thread-safe)."""

    def __init__(
        self,
        root: Union[str, Path],
        cell_workers: int = 1,
        job_runners: int = 2,
        metrics: Any = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cell_workers = max(1, cell_workers)
        self.cache = SweepCache(self.root / "cache")
        self.metrics = metrics
        self.retry = retry
        self._salt = code_salt()
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._closed = False
        self._recover()
        self._journal = RunJournal(self.root / "jobs.journal")
        self._runners = [
            threading.Thread(target=self._runner_loop,
                             name=f"job-runner-{i}", daemon=True)
            for i in range(max(1, job_runners))
        ]
        for thread in self._runners:
            thread.start()

    # ------------------------------------------------------------------
    # Recovery (WAL replay)
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the job table from the WAL and re-enqueue survivors."""
        path = self.root / "jobs.journal"
        if not path.exists() or path.stat().st_size == 0:
            return
        records = RunJournal.replay_typed(path, ("job_submit", "job_done"))
        for record in records:
            data = record["data"]
            if record["type"] == "job_submit":
                spec: SweepSpec = pickle.loads(decode_blob(data["spec"]))
                self._jobs[data["job_id"]] = Job(
                    job_id=data["job_id"], spec=spec,
                    n_cells=data.get("n_cells", len(spec)),
                    submitted_monotonic=time.monotonic())
            else:
                job = self._jobs.get(data["job_id"])
                if job is not None:
                    job.state = DONE if data.get("ok") else FAILED
                    job.error = data.get("error")
        for job in self._jobs.values():
            if job.state in (QUEUED, RUNNING):
                job.state = QUEUED
                self._queue.put(job.job_id)
                self._count("jobs.recovered")

    # ------------------------------------------------------------------
    # Submission / lookup
    # ------------------------------------------------------------------
    def submit(self, spec: SweepSpec) -> tuple:
        """Accept a validated spec; returns ``(job, created)``.

        The WAL record is fsync'd before this returns, so an acked
        submission survives any subsequent crash.  A resubmission of
        an identical grid (same content-hash ID) is acknowledged
        without journalling, enqueueing or computing anything.
        """
        job_id = job_id_for(spec, self._salt)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                self._count("jobs.deduped")
                return existing, False
            job = Job(job_id=job_id, spec=spec, n_cells=len(spec),
                      submitted_monotonic=time.monotonic())
            self._jobs[job_id] = job
        self._journal.append("job_submit", {
            "job_id": job_id,
            "spec": encode_blob(pickle.dumps(spec, protocol=4)),
            "salt": self._salt,
            "n_cells": job.n_cells,
            "kind": spec.kind,
        })
        self._queue.put(job_id)
        self._count("jobs.submitted")
        return job, True

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ApiError(404, "unknown_job", f"no job {job_id!r}")
        return job

    def status(self, job_id: str) -> Dict[str, Any]:
        """JSON-ready status + live progress snapshot for one job."""
        job = self.get(job_id)
        out: Dict[str, Any] = {
            "job_id": job.job_id,
            "state": job.state,
            "cells": job.n_cells,
        }
        if job.error is not None:
            out["error"] = job.error
        runner = job.runner
        if runner is not None:
            out["progress"] = runner.progress().as_dict()
        if job.stats is not None:
            out["stats"] = job.stats
        return out

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (for /metrics)."""
        with self._lock:
            jobs = list(self._jobs.values())
        out = {QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0}
        for job in jobs:
            out[job.state] = out.get(job.state, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result_blobs(self, job_id: str) -> List[bytes]:
        """Per-cell pickled outcomes of a finished job, in spec order.

        Pickle protocol 4 -- byte-identical to pickling the outcome of
        a direct :class:`ScenarioRunner` run of the same grid, which is
        exactly what the end-to-end tests assert.
        """
        job = self.get(job_id)
        if job.state != DONE:
            raise ApiError(409, "job_not_done",
                           f"job {job_id} is {job.state}")
        result = self._materialise(job)
        return [pickle.dumps(r, protocol=4) for r in result.results]

    def _materialise(self, job: Job) -> SweepResult:
        """The job's SweepResult, rebuilt from its run journal if the
        store restarted since the job finished (every cell replays as
        committed -- nothing recomputes)."""
        if job.result is not None:
            return job.result
        runner = self._build_runner(job, executor=None)
        result = runner.resume()
        with self._lock:
            if job.result is None:
                job.result = result
                job.stats = result.stats.as_dict()
        return job.result

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _executor(self) -> Optional[SweepExecutor]:
        """A fresh per-job executor when the env asks for distribution."""
        try:
            n = int(os.environ.get(DIST_WORKERS_ENV, "0") or "0")
        except ValueError:
            n = 0
        if n <= 0:
            return None
        from ..sim.distributed import DistributedExecutor

        return DistributedExecutor(spawn_workers=n, lease_timeout_s=10.0)

    def _build_runner(self, job: Job,
                      executor: Optional[SweepExecutor]) -> ScenarioRunner:
        job_dir = self.root / "jobs" / job.job_id
        job_dir.mkdir(parents=True, exist_ok=True)
        kwargs: Dict[str, Any] = {}
        if self.retry is not None:
            kwargs["retry"] = self.retry
        return ScenarioRunner(
            workers=self.cell_workers,
            cache=self.cache,
            journal=job_dir / "run.journal",
            executor=executor,
            **kwargs,
        )

    def _runner_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                job = self._jobs.get(job_id)
            if job is None or job.state not in (QUEUED,):
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        queue_wait = time.monotonic() - job.submitted_monotonic
        self._observe("job.queue_wait_s", queue_wait)
        self._merge_spans({"job.queue_wait": {
            "count": 1, "total_s": queue_wait, "max_s": queue_wait}})
        runner = self._build_runner(job, executor=self._executor())
        with self._lock:
            job.runner = runner
            job.state = RUNNING
        tracer = Tracer()
        mark = tracer.mark()
        span = tracer.start("job.exec", job=job.job_id,
                            cells=job.n_cells)
        started = time.monotonic()
        try:
            result = runner.run_or_resume(job.spec)
        except Exception as exc:  # infrastructure failure, not a cell
            span.finish()
            self._merge_spans(tracer.window(mark))
            self._finish(job, ok=False,
                         error=f"{type(exc).__name__}: {exc}")
            return
        span.finish()
        self._merge_spans(tracer.window(mark))
        self._observe("job.exec_s", time.monotonic() - started)
        failures = result.failures
        with self._lock:
            job.result = result
            job.stats = result.stats.as_dict()
        if failures:
            self._finish(job, ok=False,
                         error=f"{len(failures)} of {job.n_cells} cells "
                               f"failed ({failures[0][1].error_type})")
        else:
            self._count("jobs.cache_hits", result.stats.cache_hits)
            self._finish(job, ok=True)

    def _finish(self, job: Job, ok: bool,
                error: Optional[str] = None) -> None:
        self._journal.append("job_done", {
            "job_id": job.job_id, "ok": ok, "error": error})
        with self._lock:
            job.state = DONE if ok else FAILED
            job.error = error
        self._count("jobs.completed" if ok else "jobs.failed")

    # ------------------------------------------------------------------
    # Lifecycle / metrics plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the runner threads and close the WAL (graceful only --
        the crash path needs no cooperation, that is the point)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._runners:
            self._queue.put(None)
        for thread in self._runners:
            thread.join(timeout=30.0)
        self._journal.close()

    def _count(self, name: str, value: float = 1.0) -> None:
        if self.metrics is not None and value:
            self.metrics.inc(name, value)

    def _observe(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value)

    def _merge_spans(self, window: Dict[str, Dict[str, float]]) -> None:
        if self.metrics is not None:
            self.metrics.merge_spans(window)
