"""Per-step battery-choice drivers for the fleet batch.

The scalar harness asks ``policy.decide_battery(ctx)`` once per control
step.  The fleet splits the batch into driver groups:

* :class:`VectorDualDriver` -- rows whose policy is *exactly*
  :class:`~repro.capman.baselines.DualPolicy` (the common benchmark
  case).  Its decision rule, ``LITTLE while soc_little > 0.02 else
  BIG``, vectorises to a single ``np.where`` over the row mask.
* :class:`ScalarPolicyAdapter` -- everything else.  Each row keeps its
  own (pickle-cloned) policy instance; the adapter rebuilds the exact
  :class:`~repro.sim.discharge.PolicyContext` the scalar loop would
  have built -- all observations converted back to Python floats -- and
  calls the real ``decide_battery``.  Stateful policies (CAPMAN's
  profiler/MDP machinery) therefore follow trajectories identical to
  their scalar twins.

Choices are written into a shared ``(N,)`` int8 column:
``CHOICE_NONE`` (-1, policy returned ``None``), ``CHOICE_BIG`` (0) or
``CHOICE_LITTLE`` (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..battery.switch import BatterySelection
from ..capman.baselines import DualPolicy
from ..sim.discharge import PolicyContext, SchedulingPolicy

__all__ = ["CHOICE_NONE", "CHOICE_BIG", "CHOICE_LITTLE",
           "StepObservation", "VectorDualDriver", "ScalarPolicyAdapter",
           "is_vectorisable"]

CHOICE_NONE = np.int8(-1)
CHOICE_BIG = np.int8(0)
CHOICE_LITTLE = np.int8(1)


def is_vectorisable(policy: SchedulingPolicy) -> bool:
    """True when the policy has a closed-form vector decision rule.

    Deliberately an exact-type check: a subclass may override
    ``decide_battery`` and must fall back to the adapter.
    """
    return type(policy) is DualPolicy


@dataclass
class StepObservation:
    """Read-only view of the batch handed to decision drivers."""

    j: int                    #: lockstep global step index
    run: np.ndarray           #: rows taking a step this tick
    starts: np.ndarray        #: control-step start times (schedule clock)
    dts: np.ndarray           #: control-step lengths
    soc_big: np.ndarray
    soc_little: np.ndarray
    cpu_temp: np.ndarray
    surf_temp: np.ndarray
    active_big: np.ndarray    #: current switch position
    base_w: np.ndarray        #: predicted demand power (the memo value)


class VectorDualDriver:
    """Vectorised ``DualPolicy.decide_battery`` over a row mask."""

    def __init__(self, rows_mask: np.ndarray) -> None:
        self.rows_mask = rows_mask

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        """LITTLE while its SoC holds above 2%, then BIG -- every step."""
        mask = self.rows_mask & obs.run
        np.copyto(choices,
                  np.where(obs.soc_little > 0.02, CHOICE_LITTLE, CHOICE_BIG),
                  where=mask)


class ScalarPolicyAdapter:
    """Row-at-a-time fallback running the real policy objects."""

    def __init__(self, entries: Sequence[Tuple[int, SchedulingPolicy,
                                               "object"]]) -> None:
        #: ``(row, policy, schedule)`` triples, one per adapted device.
        self.entries: List[Tuple[int, SchedulingPolicy, object]] = \
            list(entries)

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        j = obs.j
        for row, policy, sched in self.entries:
            if not obs.run[row]:
                continue
            seg = sched.segments[int(sched.seg_of_step[j])]
            ctx = PolicyContext(
                now_s=float(obs.starts[row]),
                demand=seg.demand,
                syscall=sched.syscalls[j],
                predicted_power_w=float(obs.base_w[row]),
                cpu_temp_c=float(obs.cpu_temp[row]),
                surface_temp_c=float(obs.surf_temp[row]),
                soc_big=float(obs.soc_big[row]),
                soc_little=float(obs.soc_little[row]),
                active=(BatterySelection.BIG if obs.active_big[row]
                        else BatterySelection.LITTLE),
                segment_start=bool(sched.seg_start[j]),
            )
            choice = policy.decide_battery(ctx)
            if choice is None:
                choices[row] = CHOICE_NONE
            elif choice is BatterySelection.BIG:
                choices[row] = CHOICE_BIG
            else:
                choices[row] = CHOICE_LITTLE
