"""Per-step battery-choice drivers for the fleet batch.

The scalar harness asks ``policy.decide_battery(ctx)`` once per control
step.  The fleet splits the batch into driver groups: each policy type
registered in :data:`VECTOR_DRIVERS` gets one vector driver instance
covering all its rows, and every remaining row falls back to
:class:`ScalarPolicyAdapter`, which rebuilds the exact
:class:`~repro.sim.discharge.PolicyContext` the scalar loop would have
built -- all observations converted back to Python floats -- and calls
the real ``decide_battery``.

Registered vector drivers:

* :class:`VectorDualDriver` -- ``LITTLE while soc_little > 0.02 else
  BIG``, one ``np.where``.
* :class:`VectorHeuristicDriver` -- the utilisation-threshold
  hysteresis of :class:`~repro.capman.baselines.HeuristicPolicy` as a
  per-segment utilisation table plus two comparisons.
* :class:`VectorPracticeDriver` -- ``decide_battery`` always returns
  ``None``; the driver is a no-op (the choice column resets to
  ``CHOICE_NONE`` each step).  Registration is about the *decision
  rule*; :func:`~repro.fleet.spec.supports_policy` still rejects the
  policy's single-battery pack.
* ``VectorCapmanDriver`` (:mod:`repro.fleet.capman`) -- compiled MDP
  action tables with epoch-batched learning and shared-trajectory
  dedupe.

Registration is keyed on the *exact* type: a subclass may override
``decide_battery`` and must fall back to the adapter.

Choices are written into a shared ``(N,)`` int8 column:
``CHOICE_NONE`` (-1, policy returned ``None``), ``CHOICE_BIG`` (0) or
``CHOICE_LITTLE`` (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..battery.switch import BatterySelection
from ..capman.baselines import DualPolicy, HeuristicPolicy, PracticePolicy
from ..sim.discharge import PolicyContext, SchedulingPolicy

__all__ = ["CHOICE_NONE", "CHOICE_BIG", "CHOICE_LITTLE",
           "StepObservation", "VectorDualDriver", "VectorHeuristicDriver",
           "VectorPracticeDriver", "ScalarPolicyAdapter",
           "VECTOR_DRIVERS", "register_vector_driver",
           "make_decision_drivers", "is_vectorisable"]

CHOICE_NONE = np.int8(-1)
CHOICE_BIG = np.int8(0)
CHOICE_LITTLE = np.int8(1)

#: ``(row, policy, schedule)`` triples, one per device in a driver.
Entry = Tuple[int, SchedulingPolicy, object]

#: Exact policy type -> driver factory ``(entries, sim) -> driver``.
VECTOR_DRIVERS: Dict[type, Callable] = {}


def register_vector_driver(*policy_types: type):
    """Class decorator registering a vector driver for policy types."""
    def deco(factory):
        for policy_type in policy_types:
            VECTOR_DRIVERS[policy_type] = factory
        return factory
    return deco


def is_vectorisable(policy: SchedulingPolicy) -> bool:
    """True when the policy type has a registered vector driver.

    Deliberately an exact-type lookup: a subclass may override
    ``decide_battery`` and must fall back to the adapter.
    """
    return type(policy) in VECTOR_DRIVERS


def make_decision_drivers(policies: Sequence[SchedulingPolicy],
                          schedules: Sequence[object], sim):
    """Partition rows into vector drivers plus the scalar adapter.

    Returns ``(drivers, n_adapted)``.  Rows sharing a registered policy
    type share one driver instance (so per-type setup -- and CAPMAN's
    trajectory dedupe -- sees the whole group); all remaining rows go
    through one :class:`ScalarPolicyAdapter`.
    """
    grouped: Dict[type, List[Entry]] = {}
    adapted: List[Entry] = []
    for i, policy in enumerate(policies):
        policy_type = type(policy)
        if policy_type in VECTOR_DRIVERS:
            grouped.setdefault(policy_type, []).append(
                (i, policy, schedules[i]))
        else:
            adapted.append((i, policy, schedules[i]))
    drivers = [VECTOR_DRIVERS[policy_type](entries, sim)
               for policy_type, entries in grouped.items()]
    if adapted:
        drivers.append(ScalarPolicyAdapter(adapted))
    return drivers, len(adapted)


@dataclass
class StepObservation:
    """Read-only view of the batch handed to decision drivers."""

    j: int                    #: lockstep global step index
    run: np.ndarray           #: rows taking a step this tick
    starts: np.ndarray        #: control-step start times (schedule clock)
    dts: np.ndarray           #: control-step lengths
    segi: np.ndarray          #: per-row segment index (into its schedule)
    soc_big: np.ndarray
    soc_little: np.ndarray
    cpu_temp: np.ndarray
    surf_temp: np.ndarray
    active_big: np.ndarray    #: current switch position
    base_w: np.ndarray        #: predicted demand power (the memo value)


@register_vector_driver(DualPolicy)
class VectorDualDriver:
    """Vectorised ``DualPolicy.decide_battery`` over its rows."""

    def __init__(self, entries: Sequence[Entry], sim=None) -> None:
        self.rows = np.asarray([row for row, _, _ in entries],
                               dtype=np.int64)

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        """LITTLE while its SoC holds above 2%, then BIG -- every step."""
        sel = self.rows[obs.run[self.rows]]
        if sel.size:
            choices[sel] = np.where(obs.soc_little[sel] > 0.02,
                                    CHOICE_LITTLE, CHOICE_BIG)


@register_vector_driver(PracticePolicy)
class VectorPracticeDriver:
    """``PracticePolicy.decide_battery`` always returns ``None``.

    The shared choice column resets to ``CHOICE_NONE`` each step, so
    declining to write *is* the decision.  (The policy's single-battery
    pack still fails the fleet's pack check -- this driver only becomes
    reachable if that ever widens -- but registering it keeps the
    decision registry total over the paper's baseline policies.)
    """

    def __init__(self, entries: Sequence[Entry], sim=None) -> None:
        self.rows = np.asarray([row for row, _, _ in entries],
                               dtype=np.int64)

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        return


@register_vector_driver(HeuristicPolicy)
class VectorHeuristicDriver:
    """Vectorised utilisation-threshold hysteresis.

    The scalar rule reads only ``ctx.demand.cpu_util`` and
    ``ctx.active``: on LITTLE, switch to BIG when utilisation falls
    below ``threshold - hysteresis``; on BIG, switch to LITTLE when it
    rises above ``threshold``; otherwise no opinion.  Utilisation is a
    pure per-segment quantity, so it is tabled once at build time and
    gathered by segment index each step.
    """

    def __init__(self, entries: Sequence[Entry], sim=None) -> None:
        self.rows = np.asarray([row for row, _, _ in entries],
                               dtype=np.int64)
        n = len(entries)
        max_segs = max(len(sched.segments) for _, _, sched in entries)
        self._util = np.zeros((n, max_segs), dtype=np.float64)
        self._low_thr = np.zeros(n, dtype=np.float64)
        self._high_thr = np.zeros(n, dtype=np.float64)
        for g, (_, policy, sched) in enumerate(entries):
            for si, seg in enumerate(sched.segments):
                self._util[g, si] = seg.demand.cpu_util
            # Same float subtraction the scalar rule performs per call.
            self._low_thr[g] = policy.util_threshold - policy.util_hysteresis
            self._high_thr[g] = policy.util_threshold

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        g = np.nonzero(obs.run[self.rows])[0]
        if not g.size:
            return
        sel = self.rows[g]
        util = self._util[g, obs.segi[sel]]
        on_big = obs.active_big[sel]
        to_little = np.where(util > self._high_thr[g],
                             CHOICE_LITTLE, CHOICE_NONE)
        to_big = np.where(util < self._low_thr[g], CHOICE_BIG, CHOICE_NONE)
        choices[sel] = np.where(on_big, to_little, to_big)


class ScalarPolicyAdapter:
    """Row-at-a-time fallback running the real policy objects."""

    def __init__(self, entries: Sequence[Entry]) -> None:
        #: ``(row, policy, schedule)`` triples, one per adapted device.
        self.entries: List[Entry] = list(entries)

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        j = obs.j
        for row, policy, sched in self.entries:
            if not obs.run[row]:
                continue
            seg = sched.segments[int(sched.seg_of_step[j])]
            ctx = PolicyContext(
                now_s=float(obs.starts[row]),
                demand=seg.demand,
                syscall=sched.syscalls[j],
                predicted_power_w=float(obs.base_w[row]),
                cpu_temp_c=float(obs.cpu_temp[row]),
                surface_temp_c=float(obs.surf_temp[row]),
                soc_big=float(obs.soc_big[row]),
                soc_little=float(obs.soc_little[row]),
                active=(BatterySelection.BIG if obs.active_big[row]
                        else BatterySelection.LITTLE),
                segment_start=bool(sched.seg_start[j]),
            )
            choice = policy.decide_battery(ctx)
            if choice is None:
                choices[row] = CHOICE_NONE
            elif choice is BatterySelection.BIG:
                choices[row] = CHOICE_BIG
            else:
                choices[row] = CHOICE_LITTLE
