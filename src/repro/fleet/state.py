"""Struct-of-arrays state for a batch of simulated phones.

One :class:`FleetState` holds every mutable quantity of ``N`` devices
as ``(N,)`` NumPy arrays -- the device axis is the array axis.  The
layout mirrors the scalar object graph field for field:

========================  ============================================
Array group               Scalar twin
========================  ============================================
``avail_*/bound_*``       :class:`repro.battery.cell.Cell` KiBaM wells
``vtrans_*``              the cell's RC transient branch voltage
``throughput_*``          the cell's cumulative throughput counter
``cell_temp_c``           ``Cell.temperature_c`` (shared by both cells)
``active_big`` et al.     :class:`repro.battery.switch.BatterySwitch`
``supercap_v``            :class:`repro.battery.supercap.Supercapacitor`
``tec_on`` et al.         :class:`repro.thermal.tec.TECUnit`
``thermo_on``             the harness :class:`ThermostatController`
``node_temps``            the 4-node RC thermal network temperatures
``clock_s``               ``Phone.clock_s``
accounting arrays         the local variables of ``run_discharge_cycle``
========================  ============================================

Suffix ``_b`` is the BIG cell, ``_l`` the LITTLE cell.  All floats are
float64 so every element carries exactly the bits the scalar Python
float would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

__all__ = ["FleetState"]


def _f(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.float64)


def _b(n: int) -> np.ndarray:
    return np.zeros(n, dtype=bool)


def _i(n: int) -> np.ndarray:
    return np.zeros(n, dtype=np.int64)


@dataclass
class FleetState:
    """All mutable per-device state, one NumPy axis = one device."""

    n: int

    # --- KiBaM cells (big / little) -----------------------------------
    avail_b: np.ndarray = None
    bound_b: np.ndarray = None
    vtrans_b: np.ndarray = None
    throughput_b: np.ndarray = None
    avail_l: np.ndarray = None
    bound_l: np.ndarray = None
    vtrans_l: np.ndarray = None
    throughput_l: np.ndarray = None
    #: Battery-bay temperature propagated to both cells (degC).
    cell_temp_c: np.ndarray = None

    # --- Battery switch -----------------------------------------------
    active_big: np.ndarray = None
    last_switch_s: np.ndarray = None
    switch_events: np.ndarray = None
    sw_energy_spent_j: np.ndarray = None
    sw_heat_pending_j: np.ndarray = None
    sw_energy_pending_j: np.ndarray = None

    # --- Supercapacitor (LITTLE rail filter) --------------------------
    supercap_v: np.ndarray = None

    # --- TEC + thermostat ---------------------------------------------
    tec_on: np.ndarray = None
    tec_on_time_s: np.ndarray = None
    tec_energy_j: np.ndarray = None
    thermo_on: np.ndarray = None

    # --- Thermal network node temperatures (cpu, battery, surface,
    # ambient), one (N,) column per node --------------------------------
    node_temps: List[np.ndarray] = field(default_factory=list)

    # --- Device clock --------------------------------------------------
    clock_s: np.ndarray = None

    # --- Harness accounting (run_discharge_cycle locals) ---------------
    alive: np.ndarray = None
    energy_j: np.ndarray = None
    big_time_s: np.ndarray = None
    little_time_s: np.ndarray = None
    hot_time_s: np.ndarray = None
    max_temp_c: np.ndarray = None
    brownouts: np.ndarray = None
    steps_run: np.ndarray = None
    service_time_s: np.ndarray = None

    def __post_init__(self) -> None:
        n = self.n
        for name in (
            "avail_b", "bound_b", "vtrans_b", "throughput_b",
            "avail_l", "bound_l", "vtrans_l", "throughput_l",
            "cell_temp_c", "last_switch_s", "sw_energy_spent_j",
            "sw_heat_pending_j", "sw_energy_pending_j", "supercap_v",
            "tec_on_time_s", "tec_energy_j", "clock_s", "energy_j",
            "big_time_s", "little_time_s", "hot_time_s", "max_temp_c",
            "service_time_s",
        ):
            if getattr(self, name) is None:
                setattr(self, name, _f(n))
        for name in ("active_big", "tec_on", "thermo_on", "alive"):
            if getattr(self, name) is None:
                setattr(self, name, _b(n))
        for name in ("switch_events", "brownouts", "steps_run"):
            if getattr(self, name) is None:
                setattr(self, name, _i(n))
        if not self.node_temps:
            self.node_temps = [_f(n) for _ in range(4)]
