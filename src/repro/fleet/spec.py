"""Fleet construction: device specs, support checks, schedule packing.

A :class:`FleetSpec` takes a list of :class:`DeviceSpec` rows (policy x
trace x profile x harness knobs -- the same arguments one would hand to
:func:`repro.sim.discharge.run_discharge_cycle`) and packs them into
the struct-of-arrays layout the :class:`~repro.fleet.simulator.
FleetSimulator` advances in lockstep:

* control-step **schedules** are materialised through the *real*
  :func:`repro.sim.engine.iter_control_steps` over the looped trace, so
  every start/dt float is bitwise the one the scalar loop would see;
* per-segment **demand powers** come from the real
  ``Phone._demand_powers`` memo of a per-row :class:`Phone` that is
  kept alive for the simulator's exact-fallback path;
* heterogeneous **parameters** (chemistry constants, switch costs,
  supercap sizing, TEC drive, thermostat thresholds) are read off the
  constructed objects into padded ``(N,)`` arrays.

Devices the vectorised path cannot reproduce exactly (single-battery
packs, overridden demand filters, supervised/fault policies, custom
component subclasses) raise :class:`UnsupportedDeviceError` -- callers
like the sweep runner route those rows to the scalar engine instead.
"""

from __future__ import annotations

import hashlib
import math
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..battery.cell import Cell
from ..battery.pack import BigLittlePack
from ..battery.supercap import Supercapacitor
from ..battery.switch import BatterySelection, BatterySwitch
from ..device.phone import Phone
from ..device.profiles import NEXUS, PhoneProfile
from ..device.syscalls import Syscall
from ..sim.discharge import SchedulingPolicy
from ..sim.engine import iter_control_steps
from ..thermal.hotspot import HOT_SPOT_THRESHOLD_C
from ..thermal.tec import TECUnit
from ..workload.base import Segment
from ..workload.traces import Trace

__all__ = ["DeviceSpec", "FleetSpec", "UnsupportedDeviceError",
           "supports_policy", "NODE_NAMES"]

#: Canonical node order of the phone thermal network; the fleet's
#: ``node_temps`` columns use these indices.
NODE_NAMES = ("cpu", "battery", "surface", "ambient")


class UnsupportedDeviceError(ValueError):
    """The device cannot be batch-simulated exactly; use the scalar path."""


@dataclass(frozen=True)
class DeviceSpec:
    """One device (= one batch row): the ``run_discharge_cycle`` spec."""

    policy: SchedulingPolicy
    trace: Trace
    profile: PhoneProfile = NEXUS
    control_dt: float = 1.0
    max_duration_s: float = 3.0 * 3600.0
    ambient_c: float = 25.0
    tec_threshold_c: float = HOT_SPOT_THRESHOLD_C
    record_every: int = 1
    brownout_limit: int = 3


class Schedule:
    """A materialised control-step sequence shared by identical rows."""

    __slots__ = ("starts", "dts", "seg_of_step", "seg_start", "syscalls",
                 "segments", "n_steps", "_fingerprint")

    def __init__(self, trace: Trace, control_dt: float,
                 max_duration_s: float) -> None:
        def looped():
            while True:
                for seg in trace:
                    yield seg

        seg_index: Dict[int, int] = {}
        segments: List[Segment] = []
        starts: List[float] = []
        dts: List[float] = []
        seg_of_step: List[int] = []
        seg_start: List[bool] = []
        syscalls: List[Optional[Syscall]] = []
        for step in iter_control_steps(looped(), control_dt, max_duration_s):
            idx = seg_index.get(id(step.segment))
            if idx is None:
                idx = len(segments)
                seg_index[id(step.segment)] = idx
                segments.append(step.segment)
            starts.append(step.start_s)
            dts.append(step.dt)
            seg_of_step.append(idx)
            seg_start.append(step.segment_start)
            syscalls.append(step.syscall)
        self.starts = np.asarray(starts, dtype=np.float64)
        self.dts = np.asarray(dts, dtype=np.float64)
        self.seg_of_step = np.asarray(seg_of_step, dtype=np.int64)
        self.seg_start = np.asarray(seg_start, dtype=bool)
        self.syscalls = syscalls
        self.segments = segments
        self.n_steps = len(starts)
        self._fingerprint: Optional[str] = None

    def content_fingerprint(self) -> str:
        """Content hash of the materialised control-step grid.

        Two schedules with equal fingerprints drive byte-identical
        scalar control loops: the step grid (starts/dts/segment
        mapping/segment-start flags) is hashed raw, and each distinct
        segment via its deterministic frozen-dataclass ``repr`` (demand,
        duration, syscall -- the same convention as
        :func:`repro.sim.discharge.trace_fingerprint`).  Per-step
        syscalls are derivable from segments + ``seg_start``, so they
        need no separate hashing.  The CAPMAN fleet driver keys shared
        learning trajectories on this, so content-equal traces dedupe
        even when they are distinct Python objects.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(self.starts.tobytes())
            h.update(self.dts.tobytes())
            h.update(self.seg_of_step.tobytes())
            h.update(self.seg_start.tobytes())
            for seg in self.segments:
                h.update(repr((seg.demand, seg.duration_s,
                               seg.syscall)).encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint


def _check_policy(policy: SchedulingPolicy) -> Optional[str]:
    """Reason the policy is unsupported, or None when it is fine."""
    if type(policy).filter_demand is not SchedulingPolicy.filter_demand:
        return "policy overrides filter_demand (demand rewriting)"
    if callable(getattr(policy, "fault_report", None)):
        return "policy reports fault/degraded-mode state"
    return None


def _check_pack(pack) -> Optional[str]:
    """Reason the pack is unsupported, or None when it is fine."""
    if type(pack) is not BigLittlePack:
        return f"pack type {type(pack).__name__} is not BigLittlePack"
    if type(pack.switch) is not BatterySwitch:
        return "custom switch subclass"
    if pack.supercap is not None and type(pack.supercap) is not Supercapacitor:
        return "custom supercapacitor subclass"
    for cell in (pack.big, pack.little):
        if type(cell) is not Cell:
            return "custom cell subclass"
        _, tau = cell.chemistry.effective_transient()
        if tau <= 0:
            return "chemistry with non-positive transient tau"
    return None


def supports_policy(policy: SchedulingPolicy) -> bool:
    """Whether the fleet path can reproduce this policy's cycle exactly.

    Probes :meth:`~repro.sim.discharge.SchedulingPolicy.build_pack` on
    a throwaway instance, so it is safe to call on a template policy.
    """
    reason = _check_policy(policy)
    if reason is not None:
        return False
    try:
        pack = policy.build_pack()
    except Exception:
        return False
    return _check_pack(pack) is None


class FleetSpec:
    """Builder: packs heterogeneous devices into one lockstep batch."""

    def __init__(self, devices: Sequence[DeviceSpec]) -> None:
        if not devices:
            raise ValueError("a fleet needs at least one device")
        self.devices: Tuple[DeviceSpec, ...] = tuple(devices)

    def __len__(self) -> int:
        return len(self.devices)

    def build(self):
        """Construct the batch simulator (see module docstring).

        Policies are cloned through a pickle round trip -- exactly the
        isolation the sweep runner applies before a scalar cell run --
        so the caller's template instances are never mutated.
        """
        from .simulator import FleetSimulator

        n = len(self.devices)
        phones: List[Phone] = []
        policies: List[SchedulingPolicy] = []
        schedules: List[Schedule] = []
        sched_cache: Dict[Tuple[int, float, float], Schedule] = {}
        topology = None

        params: Dict[str, np.ndarray] = {}

        def farr(name):
            return params.setdefault(name, np.zeros(n, dtype=np.float64))

        for i, dev in enumerate(self.devices):
            reason = _check_policy(dev.policy)
            if reason is not None:
                raise UnsupportedDeviceError(f"device {i}: {reason}")
            policy = pickle.loads(pickle.dumps(dev.policy, protocol=4))
            pack = policy.build_pack()
            reason = _check_pack(pack)
            if reason is not None:
                raise UnsupportedDeviceError(f"device {i}: {reason}")

            phone = Phone(profile=dev.profile, pack=pack,
                          ambient_c=dev.ambient_c)
            if type(phone.tec) is not TECUnit or (
                    phone.tec.cold_node, phone.tec.hot_node) != ("cpu",
                                                                 "surface"):
                raise UnsupportedDeviceError(f"device {i}: non-standard TEC")
            topo = phone.thermal.compiled_topology()
            if tuple(topo[0]) != NODE_NAMES:
                raise UnsupportedDeviceError(
                    f"device {i}: non-standard thermal node set {topo[0]}")
            if topology is None:
                topology = topo
            elif (topo[1], topo[2], topo[3]) != (topology[1], topology[2],
                                                 topology[3]):
                raise UnsupportedDeviceError(
                    f"device {i}: thermal topology differs across the fleet")
            policy.on_cycle_start(dev.trace, phone)

            key = (id(dev.trace), dev.control_dt, dev.max_duration_s)
            sched = sched_cache.get(key)
            if sched is None:
                sched = Schedule(dev.trace, dev.control_dt,
                                 dev.max_duration_s)
                sched_cache[key] = sched
            if sched.n_steps == 0:
                raise UnsupportedDeviceError(
                    f"device {i}: empty control schedule")

            phones.append(phone)
            policies.append(policy)
            schedules.append(sched)

            for tag, cell in (("b", pack.big), ("l", pack.little)):
                chem = cell.chemistry
                r1, tau = chem.effective_transient()
                farr(f"cap_{tag}")[i] = cell.capacity_amp_s
                farr(f"imax_{tag}")[i] = cell.max_current
                farr(f"r0_{tag}")[i] = chem.internal_resistance
                farr(f"tc_{tag}")[i] = chem.resistance_temp_coeff
                farr(f"cutoff_{tag}")[i] = chem.cutoff_voltage
                farr(f"full_{tag}")[i] = chem.full_voltage
                farr(f"c_{tag}")[i] = chem.kibam_c
                farr(f"k_{tag}")[i] = chem.kibam_k
                farr(f"coul_{tag}")[i] = chem.coulombic_efficiency
                farr(f"rl_{tag}")[i] = chem.rate_loss_coeff
                farr(f"r1_{tag}")[i] = r1
                farr(f"tau_{tag}")[i] = tau

            sw = pack.switch
            farr("sw_energy_j")[i] = sw.switch_energy_j
            farr("sw_heat_j")[i] = sw.switch_heat_j
            farr("sw_dwell_s")[i] = sw.min_dwell_s

            sc = pack.supercap
            has_sc = params.setdefault("has_sc", np.zeros(n, dtype=bool))
            has_sc[i] = sc is not None
            farr("sc_cap_f")[i] = sc.capacitance_f if sc else 1.0
            farr("sc_rated_v")[i] = sc.rated_voltage if sc else 1.0
            farr("sc_esr")[i] = sc.esr_ohm if sc else 0.0
            farr("sc_refill_w")[i] = sc._refill_rate_w() if sc else 0.0

            farr("tec_drive_w")[i] = phone.tec.drive_power_w
            farr("tec_pump_w")[i] = phone.tec.pump_w
            uses_tec = params.setdefault("uses_tec", np.zeros(n, dtype=bool))
            uses_tec[i] = bool(policy.uses_tec)
            farr("thr_threshold_c")[i] = dev.tec_threshold_c
            farr("thr_hysteresis_k")[i] = 2.0  # ThermostatController default
            farr("ambient_c")[i] = dev.ambient_c

            rec = params.setdefault("record_every", np.zeros(n, np.int64))
            rec[i] = dev.record_every
            brw = params.setdefault("brownout_limit", np.zeros(n, np.int64))
            brw[i] = dev.brownout_limit

        params["cap_total"] = params["cap_b"] + params["cap_l"]

        # Demand-power tables via the real per-phone memo: (N, max_segs).
        max_segs = max(len(s.segments) for s in schedules)
        base_tbl = np.zeros((n, max_segs), dtype=np.float64)
        cpu_tbl = np.zeros((n, max_segs), dtype=np.float64)
        for i, (phone, sched) in enumerate(zip(phones, schedules)):
            for si, seg in enumerate(sched.segments):
                base_w, cpu_w = phone._demand_powers(seg.demand)
                base_tbl[i, si] = base_w
                cpu_tbl[i, si] = cpu_w

        n_steps = np.asarray([s.n_steps for s in schedules], dtype=np.int64)

        return FleetSimulator(
            spec=self, phones=phones, policies=policies,
            schedules=schedules, params=params,
            base_tbl=base_tbl, cpu_tbl=cpu_tbl, n_steps=n_steps,
            topology=topology,
        )


def initial_state_from_phones(phones: Sequence[Phone]):
    """Seed a :class:`~repro.fleet.state.FleetState` from live phones."""
    from .state import FleetState

    n = len(phones)
    st = FleetState(n)
    for i, phone in enumerate(phones):
        pack: BigLittlePack = phone.pack
        for tag, cell in (("b", pack.big), ("l", pack.little)):
            getattr(st, f"avail_{tag}")[i] = cell._available
            getattr(st, f"bound_{tag}")[i] = cell._bound
            getattr(st, f"vtrans_{tag}")[i] = cell._v_transient
            getattr(st, f"throughput_{tag}")[i] = cell._throughput
        st.cell_temp_c[i] = pack.big.temperature_c
        sw = pack.switch
        st.active_big[i] = sw.active is BatterySelection.BIG
        st.last_switch_s[i] = sw._last_switch_time
        st.switch_events[i] = len(sw._events)
        st.sw_energy_spent_j[i] = sw._energy_spent_j
        st.sw_heat_pending_j[i] = sw._heat_emitted_j
        st.sw_energy_pending_j[i] = sw._pending_energy_j
        if pack.supercap is not None:
            st.supercap_v[i] = pack.supercap._voltage
        st.tec_on[i] = phone.tec.is_on
        st.tec_on_time_s[i] = phone.tec.on_time_s
        st.tec_energy_j[i] = phone.tec.energy_used_j
        st.thermo_on[i] = False
        for ni, name in enumerate(NODE_NAMES):
            st.node_temps[ni][i] = phone.thermal.temperature(name)
        st.clock_s[i] = phone.clock_s
        st.max_temp_c[i] = phone.ambient_c
    st.alive[:] = True
    assert math.isfinite(float(st.cell_temp_c.sum()))
    return st
