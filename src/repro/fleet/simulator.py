"""Vectorised lockstep batch simulator for N phones.

One :meth:`FleetSimulator.step` advances every device by one control
step with masked NumPy operations over the struct-of-arrays
:class:`~repro.fleet.state.FleetState`.  The step is an exact
transcription of one iteration of
:func:`~repro.sim.discharge.run_discharge_cycle` -- same kernels
(``repro.battery.kinetics``, ``repro.thermal.conduction``), same
operation order, same branch structure expressed as masks -- so a
batch of one is bit-for-bit identical to the scalar engine (the
oracle; see DESIGN.md section 11 and ``tests/test_fleet_vs_scalar``).

Two structural tricks keep that contract watertight:

* **Phase split.**  Phase A (policy decision, battery select,
  thermostat) mutates state in place exactly as the scalar harness
  does before ``phone.step``.  Phase B (the pack draw and thermal
  step) is computed *functionally* into candidate arrays and committed
  only for rows whose step is "regular".
* **Exact fallback.**  Rows taking a rare data-dependent branch the
  vector path does not model -- a partial-dt well integration
  (``drawn * dt > available``) or a mid-step deficit failover to the
  idle cell -- are replayed through their own persistent scalar
  :class:`~repro.device.phone.Phone`, synced from the arrays.  The
  fallback *is* the reference implementation, so irregular rows are
  exact by construction and the batch stays exact without modelling
  every corner case twice.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs as _obs
from ..battery import kinetics as K
from ..battery.switch import BatterySelection
from ..sim.discharge import DischargeResult
from ..sim.metrics import MetricsRecorder
from .policies import (CHOICE_BIG, CHOICE_NONE, StepObservation,
                       make_decision_drivers)
from .spec import NODE_NAMES, initial_state_from_phones
from .state import FleetState
from . import capman as _capman  # noqa: F401  (registers VectorCapmanDriver)

__all__ = ["FleetSimulator"]

#: Env var read by :meth:`FleetSimulator.run_sharded` when the caller
#: does not pass an explicit shard count.
SHARDS_ENV = "CAPMAN_FLEET_SHARDS"

_BIG = BatterySelection.BIG
_LITTLE = BatterySelection.LITTLE


def _run_shard(devices):
    """Worker body for :meth:`FleetSimulator.run_sharded`.

    Rebuilds the shard from its ``DeviceSpec`` rows -- the exact
    construction the parent performed, so results are bitwise those of
    the corresponding rows of an unsharded run -- and returns the
    results plus the shard's work counters.
    """
    from .spec import FleetSpec

    sim = FleetSpec(list(devices)).build()
    results = sim.run()
    return results, {
        "fallback_steps": sim.fallback_steps,
        "table_compiles": sim.table_compiles,
        "trajectory_dedupe_hits": sim.trajectory_dedupe_hits,
    }


def _can_serve(dep, maxp, tv, avail, p, dt):
    """Vector twin of ``BigLittlePack._can_serve`` (same float ops)."""
    i_est = p / K.pymax(tv, 1.0)
    ok = (~(maxp < p)) & (avail > i_est * dt * 1.05)
    return ~dep & ((p <= 0.0) | ok)


class FleetSimulator:
    """Advances a fleet built by :meth:`repro.fleet.spec.FleetSpec.build`."""

    def __init__(self, spec, phones, policies, schedules, params,
                 base_tbl, cpu_tbl, n_steps, topology) -> None:
        self.spec = spec
        self.phones = phones
        self.policies = policies
        self.schedules = schedules
        self.p: Dict[str, np.ndarray] = params
        self.base_tbl = base_tbl
        self.cpu_tbl = cpu_tbl
        self.n_steps = n_steps
        self.max_steps = int(n_steps.max())
        # topology: (names, index_links, (index, capacity) actives, substep)
        self.links = topology[1]
        self.actives = topology[2]
        self.thermal_sub = topology[3]

        self.n = len(phones)
        self.state = initial_state_from_phones(phones)
        self._rows = np.arange(self.n)

        # Group rows by shared schedule for per-step column assembly.
        by_sched: Dict[int, List[int]] = {}
        uniq: Dict[int, object] = {}
        for i, sched in enumerate(schedules):
            by_sched.setdefault(id(sched), []).append(i)
            uniq[id(sched)] = sched
        self.groups = [(uniq[key], np.asarray(rows, dtype=np.int64))
                       for key, rows in by_sched.items()]

        # Partition rows into per-type vector drivers + scalar adapter.
        self.drivers, self.rows_adapted = make_decision_drivers(
            policies, schedules, self)
        self.rows_vectorised = self.n - self.rows_adapted

        # Reused per-step columns.
        self._starts = np.zeros(self.n, dtype=np.float64)
        self._dts = np.ones(self.n, dtype=np.float64)
        self._segi = np.zeros(self.n, dtype=np.int64)

        #: ``(rows, t, soc, cpu, power, voltage)`` snapshots for metrics.
        self._snapshots: List[Tuple] = []
        self._results: Optional[List[DischargeResult]] = None
        #: Rows replayed through the scalar fallback, for diagnostics.
        self.fallback_steps = 0
        #: Counters merged back from worker shards (see run_sharded).
        self._shard_counters: Dict[str, int] = {}
        self._counters_exported = False

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self) -> List[DischargeResult]:
        """Advance every device to completion and return the results."""
        for j in range(self.max_steps):
            if not self.state.alive.any():
                break
            self.step(j)
        self._export_counters()
        return self.results()

    def run_sharded(self, shards: Optional[int] = None
                    ) -> List[DischargeResult]:
        """Row-shard the batch across worker processes.

        Rows are independent (the hypothesis property suite proves it),
        so each contiguous shard is rebuilt from its ``DeviceSpec``
        rows inside a worker, run to completion, and the concatenated
        results are byte-equal to :meth:`run`'s, row for row.

        ``shards=None`` reads the ``CAPMAN_FLEET_SHARDS`` env var
        (default 1); a count of 1 (or a single-row fleet) runs
        :meth:`run` in-process.  Work counters (``fallback_steps``,
        ``table_compiles``, ``trajectory_dedupe_hits``) are aggregated
        from the shards -- note dedupe only applies *within* a shard,
        so a sharded run may report fewer dedupe hits than an
        in-process one.  The parent simulator's per-step state is left
        untouched; only the results and counters come back.
        """
        if shards is None:
            raw = os.environ.get(SHARDS_ENV, "1").strip() or "1"
            shards = int(raw)
        shards = max(1, min(int(shards), self.n))
        if shards == 1:
            return self.run()
        if self._results is not None:
            return self._results

        from concurrent.futures import ProcessPoolExecutor

        chunks = [tuple(self.spec.devices[int(i)] for i in idx)
                  for idx in np.array_split(np.arange(self.n), shards)
                  if len(idx)]
        results: List[DischargeResult] = []
        for key in ("fallback_steps", "table_compiles",
                    "trajectory_dedupe_hits"):
            self._shard_counters.setdefault(key, 0)
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            for shard_results, counters in pool.map(_run_shard, chunks):
                results.extend(shard_results)
                for key, value in counters.items():
                    self._shard_counters[key] += value
        self.fallback_steps += self._shard_counters.pop("fallback_steps")
        self._results = results
        self._export_counters()
        return results

    @property
    def steps_total(self) -> int:
        """Device-steps executed so far (the throughput numerator)."""
        return int(self.state.steps_run.sum())

    @property
    def table_compiles(self) -> int:
        """CAPMAN replan-boundary solves performed."""
        return self._work_counter("table_compiles")

    @property
    def trajectory_dedupe_hits(self) -> int:
        """CAPMAN rows that shared another row's learned trajectory."""
        return self._work_counter("trajectory_dedupe_hits")

    def _work_counter(self, name: str) -> int:
        """Driver work counter, attributed to whoever did the work.

        After :meth:`run_sharded` the results came from the worker
        shards, whose drivers did all the solving; the parent's own
        (never-stepped) drivers would double-count -- their build-time
        dedupe tally describes a batch that never ran.
        """
        if self._shard_counters:
            return self._shard_counters.get(name, 0)
        return sum(getattr(d, name, 0) for d in self.drivers)

    def _export_counters(self) -> None:
        """Flush driver-mix/fallback counters to the obs registry.

        One call per run, guarded on an enabled session -- the obs
        layer's disabled-mode invisibility contract stays intact.
        """
        ob = _obs.session()
        if ob is None or self._counters_exported:
            return
        self._counters_exported = True
        reg = ob.registry
        reg.counter("fleet.rows_vectorised").inc(self.rows_vectorised)
        reg.counter("fleet.rows_adapted").inc(self.rows_adapted)
        reg.counter("fleet.fallback_steps").inc(self.fallback_steps)
        reg.counter("fleet.table_compiles").inc(self.table_compiles)
        reg.counter("fleet.trajectory_dedupe_hits").inc(
            self.trajectory_dedupe_hits)

    # ------------------------------------------------------------------
    # One lockstep control step
    # ------------------------------------------------------------------
    def step(self, j: int) -> None:
        st = self.state
        p = self.p
        rows = self._rows

        # -- Column assembly ------------------------------------------
        starts, dts_col, segi = self._starts, self._dts, self._segi
        for sched, grp in self.groups:
            if j < sched.n_steps:
                starts[grp] = sched.starts[j]
                dts_col[grp] = sched.dts[j]
                segi[grp] = sched.seg_of_step[j]
        run = st.alive & (j < self.n_steps)
        if not run.any():
            st.alive[:] = False
            return
        dt = np.where(run, dts_col, 1.0)
        base_w = self.base_tbl[rows, segi]
        cpu_w = self.cpu_tbl[rows, segi]

        # -- Phase A: observe, decide, select, thermostat -------------
        soc_b = K.state_of_charge(st.avail_b, st.bound_b, p["cap_b"])
        soc_l = K.state_of_charge(st.avail_l, st.bound_l, p["cap_l"])
        t_cpu = st.node_temps[0]
        t_surf = st.node_temps[2]

        choices = np.full(self.n, CHOICE_NONE, dtype=np.int8)
        obs = StepObservation(j=j, run=run, starts=starts, dts=dt,
                              segi=segi, soc_big=soc_b, soc_little=soc_l,
                              cpu_temp=t_cpu, surf_temp=t_surf,
                              active_big=st.active_big, base_w=base_w)
        for driver in self.drivers:
            driver.decide(obs, choices)

        dep_b = st.avail_b <= 1e-9
        dep_l = st.avail_l <= 1e-9

        # pack.select: depleted-target fallback, then switch.request.
        has = run & (choices >= 0)
        tgt_big = choices == CHOICE_BIG
        dep_t = np.where(tgt_big, dep_b, dep_l)
        dep_o = np.where(tgt_big, dep_l, dep_b)
        tgt_big = np.where(dep_t & ~dep_o, ~tgt_big, tgt_big)
        dwell_ok = ~((st.clock_s - st.last_switch_s) < p["sw_dwell_s"])
        commit = has & (tgt_big != st.active_big) & dwell_ok
        st.active_big = np.where(commit, tgt_big, st.active_big)
        st.last_switch_s = np.where(commit, st.clock_s, st.last_switch_s)
        st.switch_events = st.switch_events + commit
        st.sw_energy_spent_j = np.where(
            commit, st.sw_energy_spent_j + p["sw_energy_j"],
            st.sw_energy_spent_j)
        st.sw_heat_pending_j = np.where(
            commit, st.sw_heat_pending_j + p["sw_heat_j"],
            st.sw_heat_pending_j)

        # Thermostat + TEC drive (harness level, in place).
        upd = run & p["uses_tec"]
        thr = p["thr_threshold_c"]
        rise = ~st.thermo_on & (t_cpu >= thr)
        fall = st.thermo_on & (t_cpu < thr - p["thr_hysteresis_k"])
        new_on = np.where(rise, True, np.where(fall, False, st.thermo_on))
        st.thermo_on = np.where(upd, new_on, st.thermo_on)
        st.tec_on = np.where(upd, new_on, st.tec_on)

        # -- Phase B: pack.draw + thermal, functional candidates ------
        total_w = base_w + np.where(st.tec_on, p["tec_drive_w"], 0.0)

        # Pre-draw electrical observations, both cells.
        ocv_b = K.ocv(soc_b, p["cutoff_b"], p["full_b"])
        ocv_l = K.ocv(soc_l, p["cutoff_l"], p["full_l"])
        r_b = K.internal_resistance(soc_b, st.cell_temp_c, p["r0_b"],
                                    p["tc_b"])
        r_l = K.internal_resistance(soc_l, st.cell_temp_c, p["r0_l"],
                                    p["tc_l"])
        veff_b = ocv_b - st.vtrans_b
        veff_l = ocv_l - st.vtrans_l
        maxp_b = K.max_power(veff_b, r_b, p["imax_b"])
        maxp_l = K.max_power(veff_l, r_l, p["imax_l"])
        # terminal_voltage(0.0) == ocv - 0.0*r - vt == veff bitwise.
        cs_b = _can_serve(dep_b, maxp_b, veff_b, st.avail_b, total_w, dt)
        cs_l = _can_serve(dep_l, maxp_l, veff_l, st.avail_l, total_w, dt)

        act = st.active_big
        cs_act = np.where(act, cs_b, cs_l)
        cs_idl = np.where(act, cs_l, cs_b)
        dep_act = np.where(act, dep_b, dep_l)
        dep_idl = np.where(act, dep_l, dep_b)

        # Pre-draw failover (pack.draw step 1) -- candidates only; the
        # scalar fallback re-runs this for irregular rows.  The dwell
        # guard must see the post-Phase-A switch time: a select commit
        # this step resets the dwell clock.
        want = run & ~cs_act & (cs_idl | (dep_act & ~dep_idl))
        dwell_ok2 = ~((st.clock_s - st.last_switch_s) < p["sw_dwell_s"])
        fail_commit = want & dwell_ok2
        active2 = st.active_big ^ fail_commit
        last2 = np.where(fail_commit, st.clock_s, st.last_switch_s)
        nev2 = st.switch_events + fail_commit
        esp2 = np.where(fail_commit, st.sw_energy_spent_j + p["sw_energy_j"],
                        st.sw_energy_spent_j)
        hacc2 = np.where(fail_commit, st.sw_heat_pending_j + p["sw_heat_j"],
                         st.sw_heat_pending_j)

        heat = hacc2  # switch.take_heat_j()
        unbilled = esp2 - st.sw_energy_pending_j  # switch.take_energy_j()
        overhead_w = unbilled / dt
        gross = total_w + overhead_w

        # Supercap filter on the LITTLE rail.
        sc_rows = run & ~active2 & p["has_sc"]
        sc_batt, sc_capj, sc_heat, sc_v2 = K.supercap_smooth(
            gross, dt, st.supercap_v, p["sc_cap_f"], p["sc_rated_v"],
            p["sc_esr"], p["sc_refill_w"])
        battery_power = np.where(sc_rows, sc_batt, gross)
        cap_j = np.where(sc_rows, sc_capj, 0.0)
        heat2 = np.where(sc_rows, heat + sc_heat, heat)
        scv2 = np.where(sc_rows, sc_v2, st.supercap_v)

        # Active-cell draw (cell.draw_power), gathered by active2.
        def A(b, l):
            return np.where(active2, b, l)

        veff_a = A(veff_b, veff_l)
        r_a = A(r_b, r_l)
        imax_a = A(p["imax_b"], p["imax_l"])
        dep_pre = A(dep_b, dep_l)
        avail_a = A(st.avail_b, st.avail_l)
        bound_a = A(st.bound_b, st.bound_l)

        bp = battery_power
        zero = bp == 0.0
        main = run & ~zero & ~dep_pre

        cur_raw = K.current_for_power(bp, veff_a, r_a)
        clamp = cur_raw > imax_a
        current = np.where(clamp, imax_a, cur_raw)
        sf = clamp.copy()
        delivered_w = K.pymin(bp, K.pymax(0.0, current *
                                          (veff_a - current * r_a)))
        sf |= delivered_w < bp * (1.0 - 1e-9)
        i_sus = K.sustainable_current(bound_a, A(p["c_b"], p["c_l"]),
                                      A(p["k_b"], p["k_l"]))
        eta = A(p["coul_b"], p["coul_l"]) * (
            1.0 - K.rate_loss(current, i_sus, A(p["rl_b"], p["rl_l"])))
        drawn = current / eta
        cur_eff = np.where(main, current, 0.0)
        drawn_eff = np.where(main, drawn, 0.0)
        partial = main & (drawn * dt > avail_a)

        # KiBaM wells, both cells (active draws, idle rests).
        cur_b = np.where(active2, drawn_eff, 0.0)
        cur_l = np.where(active2, 0.0, drawn_eff)
        y1b, y2b = self._wells(st.avail_b, st.bound_b, cur_b, dt,
                               p["c_b"], p["k_b"], run)
        y1l, y2l = self._wells(st.avail_l, st.bound_l, cur_l, dt,
                               p["c_l"], p["k_l"], run)

        # RC transient branch, both cells.
        tr_b = np.where(active2, cur_eff, 0.0)
        tr_l = np.where(active2, 0.0, cur_eff)
        alpha_b = np.exp(-dt / p["tau_b"])
        alpha_l = np.exp(-dt / p["tau_l"])
        vtb2 = K.step_transient(st.vtrans_b, tr_b, p["r1_b"], alpha_b)
        vtl2 = K.step_transient(st.vtrans_l, tr_l, p["r1_l"], alpha_l)

        # Post-step terminal voltage, heat and energy of the draw.
        soc_a2 = K.state_of_charge(A(y1b, y1l), A(y2b, y2l),
                                   A(p["cap_b"], p["cap_l"]))
        ocv_a2 = K.ocv(soc_a2, A(p["cutoff_b"], p["cutoff_l"]),
                       A(p["full_b"], p["full_l"]))
        r_a2 = K.internal_resistance(soc_a2, st.cell_temp_c,
                                     A(p["r0_b"], p["r0_l"]),
                                     A(p["tc_b"], p["tc_l"]))
        voltage = ocv_a2 - cur_eff * r_a2 - A(vtb2, vtl2)
        sf |= voltage < A(p["cutoff_b"], p["cutoff_l"])
        ohmic = cur_eff * cur_eff * r_a2 * dt
        parasitic = (drawn_eff - cur_eff) * K.pymax(voltage, 0.0) * dt
        heat_cell = np.where(main, ohmic + parasitic, 0.0)
        energy_cell = np.where(main, delivered_w * dt, 0.0)
        sf_cell = np.where(zero, False, np.where(dep_pre, True, sf))
        heat3 = heat2 + heat_cell

        # Rail accounting (pack.draw step 5).
        load_share = np.where(cap_j > 0.0, bp, K.pymin(gross, bp))
        bp_pos = bp > 0.0
        served_frac = np.where(
            bp_pos, energy_cell / np.where(bp_pos, bp * dt, 1.0), 1.0)
        rail_j = load_share * dt * served_frac + cap_j
        delivered_j = K.pymin(total_w * dt,
                              K.pymax(0.0, rail_j - overhead_w * dt))
        deficit = total_w * dt - delivered_j

        # Mid-step deficit failover check against the *pre-step* idle
        # cell (scalar evaluates it before idle.rest runs).
        maxp_idl = np.where(active2, maxp_l, maxp_b)
        veff_idl = np.where(active2, veff_l, veff_b)
        dep_idl2 = np.where(active2, dep_l, dep_b)
        avail_idl = np.where(active2, st.avail_l, st.avail_b)
        can_idle = _can_serve(dep_idl2, maxp_idl, veff_idl, avail_idl,
                              deficit / dt, dt)
        failover = run & (deficit > 1e-9) & can_idle
        irregular = partial | failover
        reg = run & ~irregular

        # -- Commit Phase B for regular rows --------------------------
        def W(new, old):
            return np.where(reg, new, old)

        st.avail_b = W(y1b, st.avail_b)
        st.bound_b = W(y2b, st.bound_b)
        st.avail_l = W(y1l, st.avail_l)
        st.bound_l = W(y2l, st.bound_l)
        st.vtrans_b = W(vtb2, st.vtrans_b)
        st.vtrans_l = W(vtl2, st.vtrans_l)
        st.throughput_b = W(st.throughput_b + tr_b * dt, st.throughput_b)
        st.throughput_l = W(st.throughput_l + tr_l * dt, st.throughput_l)
        st.active_big = np.where(reg, active2, st.active_big)
        st.last_switch_s = W(last2, st.last_switch_s)
        st.switch_events = np.where(reg, nev2, st.switch_events)
        st.sw_energy_spent_j = W(esp2, st.sw_energy_spent_j)
        st.sw_heat_pending_j = W(0.0, st.sw_heat_pending_j)
        st.sw_energy_pending_j = W(esp2, st.sw_energy_pending_j)
        st.supercap_v = W(scv2, st.supercap_v)

        # Thermal network (phone.step tail), regular rows only.
        other_w = K.pymax(0.0, base_w - cpu_w)
        eff = K.pymax(0.2, 1.0 - 0.02 * K.pymax(0.0, t_surf - t_cpu))
        pumped = p["tec_pump_w"] * eff
        headroom = K.pymax(0.0, K.pymin(1.0, (t_cpu - 25.0) / 5.0))
        pumped = pumped * headroom
        inj_cpu = np.where(st.tec_on, cpu_w + (-pumped), cpu_w)
        inj_batt = heat3 / dt
        surf0 = other_w * 0.6
        inj_surf = np.where(st.tec_on, surf0 + (pumped + p["tec_drive_w"]),
                            surf0)
        tec_mask = reg & st.tec_on
        st.tec_on_time_s = np.where(tec_mask, st.tec_on_time_s + dt,
                                    st.tec_on_time_s)
        st.tec_energy_j = np.where(
            tec_mask, st.tec_energy_j + p["tec_drive_w"] * dt,
            st.tec_energy_j)
        self._thermal(reg, dt, [inj_cpu, inj_batt, inj_surf, 0.0])
        st.cell_temp_c = np.where(reg, st.node_temps[1], st.cell_temp_c)
        st.clock_s = np.where(reg, st.clock_s + dt, st.clock_s)

        # Harness accounting (the run_discharge_cycle locals).
        st.energy_j = W(st.energy_j + delivered_j, st.energy_j)
        big_mask = reg & active2
        st.big_time_s = np.where(big_mask, st.big_time_s + dt,
                                 st.big_time_s)
        st.little_time_s = np.where(reg & ~active2, st.little_time_s + dt,
                                    st.little_time_s)
        tc2 = st.node_temps[0]
        hotter = reg & (tc2 > st.max_temp_c)
        st.max_temp_c = np.where(hotter, tc2, st.max_temp_c)
        hot = reg & (tc2 >= thr)
        st.hot_time_s = np.where(hot, st.hot_time_s + dt, st.hot_time_s)

        dep_b_post = st.avail_b <= 1e-9
        dep_l_post = st.avail_l <= 1e-9
        died1 = reg & sf_cell & dep_b_post & dep_l_post
        demanded = total_w * dt
        brown = (reg & ~died1 & (demanded > 0.0) &
                 (delivered_j < demanded * 0.98))
        st.brownouts = st.brownouts + brown
        died2 = brown & (st.brownouts >= p["brownout_limit"])
        st.alive = st.alive & ~(died1 | died2)

        # -- Exact scalar fallback for irregular rows -----------------
        voltage_final = voltage
        power_final = total_w
        if irregular.any():
            voltage_final = voltage.copy()
            power_final = total_w.copy()
            for r in np.nonzero(irregular)[0]:
                self._fallback_row(int(r), segi, dt, voltage_final,
                                   power_final)

        # -- Step bookkeeping + recording -----------------------------
        st.steps_run = st.steps_run + run
        t_end = starts + dt
        st.service_time_s = np.where(run, t_end, st.service_time_s)
        st.alive = st.alive & ~(run & ((j + 1) >= self.n_steps))

        rec = run & ((st.steps_run % p["record_every"]) == 0)
        if rec.any():
            sel = np.nonzero(rec)[0]
            soc = (((st.avail_b + st.bound_b) +
                    (st.avail_l + st.bound_l)) / p["cap_total"])
            self._snapshots.append(
                (sel, t_end[sel], soc[sel], st.node_temps[0][sel],
                 power_final[sel], voltage_final[sel]))

    # ------------------------------------------------------------------
    # Grouped physics helpers (rows batched by shared substep count)
    # ------------------------------------------------------------------
    def _wells(self, y1, y2, cur, dt, c, k, mask):
        counts = K.well_substeps_array(dt, c, k)
        ny1, ny2 = y1.copy(), y2.copy()
        for n in np.unique(counts[mask]):
            m = mask & (counts == n)
            steps = int(n)
            r1, r2 = K.step_wells(y1[m], y2[m], cur[m], dt[m] / steps,
                                  steps, c[m], k[m])
            ny1[m] = r1
            ny2[m] = r2
        return ny1, ny2

    def _thermal(self, mask, dt, injections) -> None:
        from ..thermal.conduction import euler_conduction

        if not mask.any():
            return
        st = self.state
        counts = np.minimum(
            np.maximum(np.ceil(dt / self.thermal_sub), 1.0),
            100_000.0).astype(np.int64)
        new_temps = [t.copy() for t in st.node_temps]
        for n in np.unique(counts[mask]):
            m = mask & (counts == n)
            steps = int(n)
            temps = [t[m] for t in st.node_temps]
            inj = [col[m] if isinstance(col, np.ndarray) else col
                   for col in injections]
            out = euler_conduction(temps, inj, self.links, self.actives,
                                   steps, dt[m] / steps)
            for i in range(len(new_temps)):
                new_temps[i][m] = out[i]
        st.node_temps = new_temps

    # ------------------------------------------------------------------
    # Exact scalar fallback
    # ------------------------------------------------------------------
    def _fallback_row(self, r: int, segi, dt, voltage_final,
                      power_final) -> None:
        """Replay row ``r``'s step through its persistent Phone."""
        self.fallback_steps += 1
        st = self.state
        p = self.p
        phone = self.phones[r]
        pack = phone.pack
        sched = self.schedules[r]

        # Push: arrays -> objects (post-Phase-A state).
        for tag, cell in (("b", pack.big), ("l", pack.little)):
            cell._available = float(getattr(st, f"avail_{tag}")[r])
            cell._bound = float(getattr(st, f"bound_{tag}")[r])
            cell._v_transient = float(getattr(st, f"vtrans_{tag}")[r])
            cell._throughput = float(getattr(st, f"throughput_{tag}")[r])
            cell.temperature_c = float(st.cell_temp_c[r])
        sw = pack.switch
        sw._active = _BIG if st.active_big[r] else _LITTLE
        sw._last_switch_time = float(st.last_switch_s[r])
        sw._energy_spent_j = float(st.sw_energy_spent_j[r])
        sw._heat_emitted_j = float(st.sw_heat_pending_j[r])
        sw._pending_energy_j = float(st.sw_energy_pending_j[r])
        sw._events = []
        if pack.supercap is not None:
            pack.supercap._voltage = float(st.supercap_v[r])
        tec = phone.tec
        tec._on = bool(st.tec_on[r])
        tec._on_time_s = float(st.tec_on_time_s[r])
        tec._energy_j = float(st.tec_energy_j[r])
        for ni, name in enumerate(NODE_NAMES):
            phone.thermal.set_temperature(name,
                                          float(st.node_temps[ni][r]))
        phone.clock_s = float(st.clock_s[r])

        demand = sched.segments[int(segi[r])].demand
        step_dt = float(dt[r])
        outcome = phone.step(demand, step_dt)

        # Pull: objects -> arrays.
        for tag, cell in (("b", pack.big), ("l", pack.little)):
            getattr(st, f"avail_{tag}")[r] = cell._available
            getattr(st, f"bound_{tag}")[r] = cell._bound
            getattr(st, f"vtrans_{tag}")[r] = cell._v_transient
            getattr(st, f"throughput_{tag}")[r] = cell._throughput
        st.cell_temp_c[r] = pack.big.temperature_c
        st.active_big[r] = sw.active is _BIG
        st.last_switch_s[r] = sw._last_switch_time
        st.switch_events[r] += len(sw._events)
        st.sw_energy_spent_j[r] = sw._energy_spent_j
        st.sw_heat_pending_j[r] = sw._heat_emitted_j
        st.sw_energy_pending_j[r] = sw._pending_energy_j
        if pack.supercap is not None:
            st.supercap_v[r] = pack.supercap._voltage
        st.tec_on_time_s[r] = tec.on_time_s
        st.tec_energy_j[r] = tec.energy_used_j
        for ni, name in enumerate(NODE_NAMES):
            st.node_temps[ni][r] = phone.thermal.temperature(name)
        st.clock_s[r] = phone.clock_s

        # Harness accounting, exactly the scalar loop body.
        st.energy_j[r] = float(st.energy_j[r]) + outcome.energy_j
        if outcome.served_by is _BIG:
            st.big_time_s[r] = float(st.big_time_s[r]) + step_dt
        elif outcome.served_by is _LITTLE:
            st.little_time_s[r] = float(st.little_time_s[r]) + step_dt
        if outcome.cpu_temp_c > float(st.max_temp_c[r]):
            st.max_temp_c[r] = outcome.cpu_temp_c
        if outcome.cpu_temp_c >= float(p["thr_threshold_c"][r]):
            st.hot_time_s[r] = float(st.hot_time_s[r]) + step_dt
        voltage_final[r] = outcome.voltage_v
        power_final[r] = outcome.demand_w
        if outcome.shortfall and pack.depleted:
            st.alive[r] = False
        else:
            demanded_j = outcome.demand_w * step_dt
            if demanded_j > 0 and outcome.energy_j < demanded_j * 0.98:
                st.brownouts[r] += 1
                if st.brownouts[r] >= int(p["brownout_limit"][r]):
                    st.alive[r] = False

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def results(self) -> List[DischargeResult]:
        """Per-row :class:`DischargeResult`, scalar-identical fields."""
        if self._results is not None:
            return self._results
        st = self.state
        n = self.n

        samples: List[List[Tuple[float, float, float, float, float]]] = \
            [[] for _ in range(n)]
        for sel, t, soc, cpu, pw, vv in self._snapshots:
            for k in range(len(sel)):
                r = int(sel[k])
                samples[r].append((float(t[k]), float(soc[k]),
                                   float(cpu[k]), float(pw[k]),
                                   float(vv[k])))

        out: List[DischargeResult] = []
        for i, dev in enumerate(self.spec.devices):
            metrics = MetricsRecorder()
            record = metrics.record
            for t, soc, cpu, pw, vv in samples[i]:
                record("soc", t, soc)
                record("cpu_temp_c", t, cpu)
                record("power_w", t, pw)
                record("voltage_v", t, vv)
            out.append(DischargeResult(
                policy_name=self.policies[i].name,
                workload_name=dev.trace.name,
                service_time_s=float(st.service_time_s[i]),
                energy_delivered_j=float(st.energy_j[i]),
                switch_count=int(st.switch_events[i]),
                big_time_s=float(st.big_time_s[i]),
                little_time_s=float(st.little_time_s[i]),
                tec_on_time_s=float(st.tec_on_time_s[i]),
                tec_energy_j=float(st.tec_energy_j[i]),
                max_cpu_temp_c=float(st.max_temp_c[i]),
                time_above_threshold_s=float(st.hot_time_s[i]),
                metrics=metrics,
                step_count=int(st.steps_run[i]),
                wall_time_s=0.0,
            ))
        self._results = out
        return out
