"""Batched CAPMAN decisions: compiled MDP tables + trajectory dedupe.

The scalar :class:`~repro.capman.controller.CapmanPolicy` does four
things per control step: accumulate dwell statistics, (at segment
starts) feed the profiler and occasionally rebuild + re-solve the
decision MDP, look the current (device state, active battery) up in
the solved policy, and post-process the choice with the burst
fallback, the hot-spot LITTLE-lean, and the SoC-floor guard.  This
driver reproduces that bit-for-bit across all CAPMAN rows of a fleet
while doing per-step work proportional to *lookups*, not *solves*:

**Learning is runtime-state-independent.**  Everything the learning
path consumes -- ``ctx.demand``, ``ctx.syscall``, ``ctx.segment_start``
and ``ctx.predicted_power_w`` -- is a pure function of the row's
schedule and demand-power memo; none of it depends on the simulated
plant (SoC, temperature, switch position).  The whole sequence of
learned MDPs is therefore precomputable from (schedule content, base
power row, wifi threshold, policy learning parameters):

* replan *boundaries* are computed up front by walking the
  segment-start events with the scalar's own counters (an observation
  per event after the first; replan once ``n_observations >=
  min_observations`` and then every ``replan_interval`` observations);
* between boundaries nothing is solved -- the profiler replay is
  *epoch-batched*, bulk-adding each inter-event dwell gap (exact,
  because dwell increments are integer-valued floats) and issuing the
  ``observe`` calls one by one in scalar order (``Counter`` insertion
  order feeds ``build_decision_mdp``, so order is semantics);
* at a boundary the MDP is rebuilt and solved once per *trajectory*,
  and the solved policy is compiled into an ``(n_states,) int8``
  action table via the interned ``key_code * 2 + active_bit`` state
  coding (:class:`~repro.capman.profiler.DecisionStateInterner`).

**Rows sharing a trajectory share the solve.**  Rows whose
(schedule content, base powers, wifi threshold, capacity/rho/replan
parameters) content-hash matches would learn identical models at
identical steps, so they share one profiler replay and one table --
a homogeneous sub-fleet pays one ``value_iteration`` instead of N
(``trajectory_dedupe_hits`` counts the rows saved).

**The per-step decision is pure fancy indexing.**  The model lookup is
``tables[traj_of_row, seg_code * 2 + active_big]`` (-1 where the
policy has no opinion, exactly the scalar's "state not in
``solution.policy``" miss), and the fallback / hot-spot lean /
``_guard`` post-processing is a masked ``np.where`` chain whose
branch structure mirrors the scalar's early returns -- both guard
conditions are evaluated against the *pre-guard* choice, never
chained.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from ..capman.controller import SOC_FLOOR, CapmanPolicy
from ..capman.profiler import (BatteryCostModel, DecisionStateInterner,
                               PowerProfiler, device_key_of)
from ..core.online import compile_decision_table
from ..core.solver import value_iteration
from ..thermal.hotspot import HOT_SPOT_THRESHOLD_C
from ..workload.base import Segment
from .policies import (CHOICE_BIG, CHOICE_LITTLE, Entry, StepObservation,
                       register_vector_driver)

__all__ = ["VectorCapmanDriver"]

#: MDP action labels -> fleet choice codes (anything else stays -1).
_ACTION_CODE = {"use_big": int(CHOICE_BIG), "use_little": int(CHOICE_LITTLE)}

#: ``next_replan_step`` sentinel: no further boundary for this trajectory.
_NEVER = np.int64(-1)


def _trajectory_digest(policy: CapmanPolicy, sched, profile,
                       wifi_threshold_kbps: float,
                       base_row: np.ndarray) -> str:
    """Content hash of everything the learning path consumes.

    Two rows with equal digests produce byte-identical profiler
    states and solved policies at every replan boundary, so they can
    share one learned trajectory.  ``fallback_threshold_w`` is
    deliberately absent: it only shapes the per-row fallback mask,
    never the learned model.  The profile's power table is included
    because ``state_power_w`` falls back to it for keys that were
    never observed with power telemetry (e.g. the very first segment's
    key when it never recurs as a transition target).
    """
    h = hashlib.sha256()
    h.update(np.float64(wifi_threshold_kbps).tobytes())
    h.update(np.asarray([policy.capacity_mah, policy.rho],
                        dtype=np.float64).tobytes())
    h.update(np.asarray([policy.replan_interval, policy.min_observations],
                        dtype=np.int64).tobytes())
    h.update(sched.content_fingerprint().encode())
    h.update(repr(profile.power_table).encode())
    h.update(np.ascontiguousarray(
        base_row[:len(sched.segments)]).tobytes())
    return h.hexdigest()


class _LearningTrajectory:
    """One shared CAPMAN learning replay: profiler + replan plan.

    Owns the scalar :class:`PowerProfiler` all member rows would have
    built, the precomputed segment-start events of the shared schedule,
    and the event indices at which the scalar policy would replan.
    :meth:`advance` replays profiler inputs lazily up to a boundary;
    :meth:`compile` performs the boundary's MDP rebuild + solve and
    compiles the solved policy into a dense action table.
    """

    __slots__ = ("profiler", "rho", "interner", "event_steps", "event_segs",
                 "segments", "event_syscalls", "base_row", "boundary_events",
                 "next_boundary", "_replayed")

    def __init__(self, policy: CapmanPolicy, sched, profile,
                 base_row: np.ndarray,
                 interner: DecisionStateInterner) -> None:
        # Exactly on_cycle_start's profiler construction.
        self.profiler = PowerProfiler(
            profile,
            cost_model=BatteryCostModel(capacity_mah=policy.capacity_mah),
        )
        self.rho = policy.rho
        self.interner = interner
        self.segments = sched.segments
        self.base_row = base_row
        self.event_steps = np.nonzero(sched.seg_start)[0]
        self.event_segs = sched.seg_of_step[self.event_steps]
        self.event_syscalls = [sched.syscalls[int(s)]
                               for s in self.event_steps]

        # Replan plan: event k contributes one observation for k >= 1,
        # and the scalar replans when n_observations (== k) has reached
        # min_observations and either no scheduler exists yet or
        # replan_interval observations have passed since the last one.
        boundaries: List[int] = []
        since = 0
        have_scheduler = False
        for k in range(len(self.event_steps)):
            if k > 0:
                since += 1
            if k >= policy.min_observations and (
                    not have_scheduler or since >= policy.replan_interval):
                boundaries.append(k)
                have_scheduler = True
                since = 0
        self.boundary_events = boundaries
        self.next_boundary = 0
        #: Events already fed to the profiler.
        self._replayed = 0

    def first_boundary_step(self) -> np.int64:
        if self.boundary_events:
            return np.int64(self.event_steps[self.boundary_events[0]])
        return _NEVER

    def advance(self, upto_event: int) -> None:
        """Replay profiler inputs through ``upto_event`` inclusively.

        Chronological scalar order per event: the dwell of the steps
        spent in the previous segment (bulk-added -- exact, since dwell
        totals are integer-valued floats), this event's own dwell unit,
        then the transition observation with the *predicted* power of
        the new segment as the measured sample (the scalar passes
        ``ctx.predicted_power_w`` straight through).
        """
        profiler = self.profiler
        events = self.event_steps
        for k in range(self._replayed, upto_event + 1):
            seg = self.segments[int(self.event_segs[k])]
            if k > 0:
                prev = self.segments[int(self.event_segs[k - 1])]
                gap = int(events[k]) - int(events[k - 1]) - 1
                if gap > 0:
                    profiler.record_dwell(prev.demand, float(gap))
            profiler.record_dwell(seg.demand, 1.0)
            if k > 0:
                profiler.observe(
                    Segment(prev.demand, 1.0, self.event_syscalls[k - 1]),
                    Segment(seg.demand, 1.0, self.event_syscalls[k]),
                    measured_power_w=float(
                        self.base_row[int(self.event_segs[k])]),
                )
        self._replayed = max(self._replayed, upto_event + 1)

    def compile(self) -> np.ndarray:
        """One replan boundary: rebuild, solve, flatten to a table.

        ``value_iteration(mdp, rho)`` is exactly what
        ``OnlineScheduler.__init__`` runs to obtain ``solution``; the
        scheduler's similarity graph is never consulted for known
        states, so the fleet skips constructing it.
        """
        mdp = self.profiler.build_decision_mdp()
        solution = value_iteration(mdp, self.rho)
        return compile_decision_table(
            solution.policy, self.interner.state_code_of,
            self.interner.n_states, _ACTION_CODE)


@register_vector_driver(CapmanPolicy)
class VectorCapmanDriver:
    """Compiled-table CAPMAN decisions for all CAPMAN rows of a fleet."""

    def __init__(self, entries: Sequence[Entry], sim) -> None:
        self.rows = np.asarray([row for row, _, _ in entries],
                               dtype=np.int64)
        n = len(entries)
        self.interner = DecisionStateInterner()
        #: Boundary solves performed (one per trajectory per boundary).
        self.table_compiles = 0
        #: Rows that joined an existing trajectory instead of solving.
        self.trajectory_dedupe_hits = 0

        self._thr_w = np.asarray(
            [policy.fallback_threshold_w for _, policy, _ in entries],
            dtype=np.float64)

        trajectories: List[_LearningTrajectory] = []
        traj_ids = {}
        traj_of_row = np.zeros(n, dtype=np.int64)
        max_segs = max(len(sched.segments) for _, _, sched in entries)
        seg_code = np.zeros((n, max_segs), dtype=np.int64)

        for g, (row, policy, sched) in enumerate(entries):
            profile = sim.phones[row].profile
            threshold = profile.wifi_model.threshold_kbps
            base_row = sim.base_tbl[row]
            for si, seg in enumerate(sched.segments):
                seg_code[g, si] = self.interner.key_code(
                    device_key_of(seg.demand, threshold))
            digest = _trajectory_digest(policy, sched, profile, threshold,
                                        base_row)
            tid = traj_ids.get(digest)
            if tid is None:
                tid = len(trajectories)
                traj_ids[digest] = tid
                trajectories.append(_LearningTrajectory(
                    policy, sched, profile, base_row, self.interner))
            else:
                self.trajectory_dedupe_hits += 1
            traj_of_row[g] = tid

        self.trajectories = trajectories
        self.traj_of_row = traj_of_row
        self.seg_code = seg_code
        # All segment keys are interned above, and solved policies only
        # contain observed keys (a subset), so the width never grows.
        self.tables = np.full((len(trajectories), self.interner.n_states),
                              -1, dtype=np.int8)
        self.next_replan_step = np.asarray(
            [t.first_boundary_step() for t in trajectories], dtype=np.int64)
        self._member_rows = [self.rows[traj_of_row == g]
                             for g in range(len(trajectories))]

    # ------------------------------------------------------------------
    def _process_boundaries(self, obs: StepObservation) -> None:
        for g in np.nonzero(self.next_replan_step == obs.j)[0]:
            g = int(g)
            trajectory = self.trajectories[g]
            if not obs.run[self._member_rows[g]].any():
                # run is monotone decreasing per row, so no member will
                # ever consult this trajectory again: freeze it.
                self.next_replan_step[g] = _NEVER
                continue
            event = trajectory.boundary_events[trajectory.next_boundary]
            trajectory.advance(event)
            self.tables[g] = trajectory.compile()
            self.table_compiles += 1
            trajectory.next_boundary += 1
            if trajectory.next_boundary < len(trajectory.boundary_events):
                self.next_replan_step[g] = np.int64(
                    trajectory.event_steps[
                        trajectory.boundary_events[trajectory.next_boundary]])
            else:
                self.next_replan_step[g] = _NEVER

    def decide(self, obs: StepObservation, choices: np.ndarray) -> None:
        live = np.nonzero(obs.run[self.rows])[0]
        if not live.size:
            return
        self._process_boundaries(obs)

        sel = self.rows[live]
        # Model lookup: one gather.  The scalar consults the scheduler
        # *after* this step's learning, which _process_boundaries has
        # already applied.
        code = self.seg_code[live, obs.segi[sel]] * 2 + obs.active_big[sel]
        model = self.tables[self.traj_of_row[live], code]

        # Burst fallback where the model has no opinion (-1): a
        # non-finite estimate routes BIG, a burst above the per-row
        # threshold routes LITTLE, gentle load routes BIG.
        base = obs.base_w[sel]
        fallback = np.where(np.isfinite(base) & (base > self._thr_w[live]),
                            CHOICE_LITTLE, CHOICE_BIG)
        choice = np.where(model >= 0, model, fallback).astype(np.int8)

        # Hot-spot LITTLE-lean (paper Section III-E), same finite check.
        cpu_t = obs.cpu_temp[sel]
        soc_l = obs.soc_little[sel]
        lean = (np.isfinite(cpu_t) & (cpu_t >= HOT_SPOT_THRESHOLD_C)
                & (soc_l > SOC_FLOOR))
        choice = np.where(lean, CHOICE_LITTLE, choice)

        # _guard: both redirects test the pre-guard choice (the scalar
        # returns early), so a LITTLE->BIG redirect is never re-guarded
        # back to LITTLE in the same step.
        soc_b = obs.soc_big[sel]
        little_out = ~np.isfinite(soc_l) | (soc_l <= SOC_FLOOR)
        big_out = ~np.isfinite(soc_b) | (soc_b <= SOC_FLOOR)
        to_big = (choice == CHOICE_LITTLE) & little_out
        to_little = (choice == CHOICE_BIG) & big_out
        choice = np.where(to_big, CHOICE_BIG,
                          np.where(to_little, CHOICE_LITTLE, choice))

        choices[sel] = choice
