"""Vectorised fleet simulation: N devices, one NumPy axis.

Public surface::

    spec = FleetSpec([DeviceSpec(policy, trace, profile), ...])
    sim = spec.build()
    results = sim.run()          # List[DischargeResult], scalar-identical

The scalar engine (:func:`repro.sim.discharge.run_discharge_cycle`)
remains the reference oracle: a fleet of one produces bit-for-bit the
same :class:`~repro.sim.discharge.DischargeResult` (enforced by
``tests/test_fleet_vs_scalar``).  Devices the batch path cannot model
exactly raise :class:`UnsupportedDeviceError` at build time; use
:func:`supports_policy` to route them to the scalar engine instead.
"""

from .capman import VectorCapmanDriver
from .policies import (VECTOR_DRIVERS, is_vectorisable,
                       register_vector_driver)
from .simulator import FleetSimulator
from .spec import DeviceSpec, FleetSpec, UnsupportedDeviceError, supports_policy
from .state import FleetState

__all__ = [
    "DeviceSpec",
    "FleetSpec",
    "FleetSimulator",
    "FleetState",
    "UnsupportedDeviceError",
    "VectorCapmanDriver",
    "VECTOR_DRIVERS",
    "is_vectorisable",
    "register_vector_driver",
    "supports_policy",
]
