"""Crash durability: checkpoint/restore, run journal, budgets, locks.

Long-horizon runs -- multi-hour discharge cycles, daily-wear lifetime
projections, chaos grids -- must survive a SIGKILL, a power loss or a
scheduler preemption without discarding hours of compute.  This
package supplies the building blocks:

* :mod:`~repro.durability.state` -- the versioned
  ``state_dict()`` / ``load_state_dict()`` discipline every stateful
  component follows;
* :mod:`~repro.durability.snapshot` -- :class:`SimCheckpoint`, a
  checksummed, schema-versioned container of component state dicts
  with atomic fsync'd save/load, plus the periodic
  :class:`Checkpointer`;
* :mod:`~repro.durability.journal` -- the fsync'd write-ahead JSONL
  :class:`RunJournal` the sweep engine commits cells to, with
  torn-tail detection and truncation recovery;
* :mod:`~repro.durability.budget` -- wall-clock/step
  :class:`RunBudget` enforcement (checkpoint-then-exit instead of a
  timeout kill) and the :class:`HeartbeatWatchdog` that checkpoints
  stalled cells;
* :mod:`~repro.durability.deadline` -- cooperative per-thread
  deadlines, the portable fallback for ``SIGALRM`` cell timeouts;
* :mod:`~repro.durability.lock` -- the advisory :class:`FileLock`
  serialising multi-runner cache writes.

Nothing in here imports the simulator: the dependency points from
``repro.sim`` (and the component layers) into ``repro.durability``,
never back.
"""

from .budget import (
    BudgetExceededError,
    Heartbeat,
    HeartbeatWatchdog,
    RunBudget,
    retire_on_stall,
)
from .deadline import (
    DeadlineExceededError,
    clear_deadline,
    expire_deadline,
    poll_deadline,
    set_deadline,
    thread_deadline,
)
from .journal import JournalError, RunJournal
from .lock import FileLock
from .snapshot import (
    CheckpointError,
    Checkpointer,
    ChecksumError,
    SCHEMA_VERSION,
    SimCheckpoint,
)
from .state import (
    StateError,
    StateMismatchError,
    StateVersionError,
    pack_state,
    unpack_state,
)

__all__ = [
    "BudgetExceededError",
    "Heartbeat",
    "HeartbeatWatchdog",
    "RunBudget",
    "retire_on_stall",
    "DeadlineExceededError",
    "clear_deadline",
    "expire_deadline",
    "poll_deadline",
    "set_deadline",
    "thread_deadline",
    "JournalError",
    "RunJournal",
    "FileLock",
    "CheckpointError",
    "Checkpointer",
    "ChecksumError",
    "SCHEMA_VERSION",
    "SimCheckpoint",
    "StateError",
    "StateMismatchError",
    "StateVersionError",
    "pack_state",
    "unpack_state",
]
