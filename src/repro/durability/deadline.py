"""Cooperative per-thread deadlines: the portable cell-timeout fallback.

``SIGALRM`` — the sweep engine's first-choice per-cell timeout — only
works on the main thread of a POSIX process.  Anywhere else (worker
threads, Windows) the alarm would silently do nothing.  This module
provides the fallback: a deadline registered for the *current thread*
that the simulation hot loops poll once per control step via
:func:`poll_deadline`, raising when exceeded.  It is cooperative —
a cell stuck inside a single C call will not be interrupted — but for
the simulator's own loops (which step many times per second) it turns
"no timeout at all" into an honest, clean, checkpoint-friendly exit.

A watchdog may also *force* another thread's deadline to expire with
:func:`expire_deadline`, which is how stalled cells are retired.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple, Type

__all__ = [
    "DeadlineExceededError",
    "set_deadline",
    "clear_deadline",
    "poll_deadline",
    "expire_deadline",
    "thread_deadline",
]


class DeadlineExceededError(RuntimeError):
    """A cooperative deadline expired."""


#: thread ident -> (monotonic deadline, message, exception class).
_DEADLINES: Dict[int, Tuple[float, str, Type[BaseException]]] = {}
_LOCK = threading.Lock()


def set_deadline(timeout_s: float, message: str = "",
                 exc_type: Type[BaseException] = DeadlineExceededError,
                 thread_ident: Optional[int] = None) -> None:
    """Arm a deadline ``timeout_s`` seconds from now for a thread.

    ``exc_type`` customises what :func:`poll_deadline` raises (the
    sweep engine passes its ``CellTimeoutError`` subclass).
    """
    ident = thread_ident if thread_ident is not None else threading.get_ident()
    deadline = time.monotonic() + timeout_s
    msg = message or f"cooperative deadline of {timeout_s} s exceeded"
    with _LOCK:
        _DEADLINES[ident] = (deadline, msg, exc_type)


def clear_deadline(thread_ident: Optional[int] = None) -> None:
    """Disarm a thread's deadline (no-op when none is set)."""
    ident = thread_ident if thread_ident is not None else threading.get_ident()
    with _LOCK:
        _DEADLINES.pop(ident, None)


def expire_deadline(thread_ident: int, message: str = "") -> None:
    """Force a thread's deadline to 'already passed' (watchdog path)."""
    with _LOCK:
        current = _DEADLINES.get(thread_ident)
        msg = message or (current[1] if current else "deadline force-expired")
        exc_type = current[2] if current else DeadlineExceededError
        _DEADLINES[thread_ident] = (float("-inf"), msg, exc_type)


def poll_deadline() -> None:
    """Raise if the calling thread's deadline has passed.

    Cheap enough for a hot loop: one dict lookup when no deadline is
    armed (the overwhelmingly common case).
    """
    ident = threading.get_ident()
    entry = _DEADLINES.get(ident)
    if entry is None:
        return
    deadline, message, exc_type = entry
    if time.monotonic() >= deadline:
        with _LOCK:
            _DEADLINES.pop(ident, None)
        raise exc_type(message)


@contextmanager
def thread_deadline(timeout_s: float, message: str = "",
                    exc_type: Type[BaseException] = DeadlineExceededError) -> Iterator[None]:
    """Context manager: arm a deadline for this thread, always disarm."""
    set_deadline(timeout_s, message, exc_type)
    try:
        yield
    finally:
        clear_deadline()
