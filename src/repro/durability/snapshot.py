"""Checksummed, schema-versioned simulation checkpoints.

A :class:`SimCheckpoint` composes the ``state_dict()`` of every
stateful component of a run into one payload, stamps it with the
durability schema version and a SHA-256 content checksum, and writes
it atomically (temp file + fsync + rename) so a crash mid-write can
never leave a half-checkpoint where a good one used to be.  Loading
verifies the checksum before any state is offered to a component, so
a torn or bit-flipped checkpoint is detected, not silently restored.

The float payloads ride through :mod:`pickle` (protocol 4, pinned for
cross-version stability), which round-trips IEEE doubles exactly --
the foundation of the bit-identical-resume contract.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from .. import obs

__all__ = [
    "SCHEMA_VERSION",
    "CheckpointError",
    "ChecksumError",
    "SimCheckpoint",
    "Checkpointer",
]

#: Version of the overall checkpoint container layout.
SCHEMA_VERSION = 1

#: File magic; the trailing digit is the container version.
_MAGIC = b"CAPCKPT1"

#: Pickle protocol pinned for stable bytes across Python versions >=3.8.
_PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, written or read."""


class ChecksumError(CheckpointError):
    """A checkpoint's content checksum did not verify (torn/corrupt)."""


def _digest(kind: str, schema_version: int, payload: Dict[str, Any]) -> str:
    blob = pickle.dumps((schema_version, kind, payload), protocol=_PICKLE_PROTOCOL)
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class SimCheckpoint:
    """One full-state snapshot of a run.

    ``kind`` names the producing harness ("discharge", "daily", ...);
    ``payload`` maps component names to their packed state dicts (see
    :mod:`repro.durability.state`); ``checksum`` covers the schema
    version, kind and payload together.
    """

    kind: str
    payload: Dict[str, Any] = field(repr=False)
    schema_version: int = SCHEMA_VERSION
    checksum: str = ""

    @classmethod
    def create(cls, kind: str, payload: Dict[str, Any]) -> "SimCheckpoint":
        """Build a checkpoint, computing its content checksum."""
        return cls(kind=kind, payload=payload, schema_version=SCHEMA_VERSION,
                   checksum=_digest(kind, SCHEMA_VERSION, payload))

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Raise :class:`ChecksumError` unless the checksum matches."""
        if self.schema_version != SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint schema v{self.schema_version} is not the "
                f"supported v{SCHEMA_VERSION}")
        expected = _digest(self.kind, self.schema_version, self.payload)
        if expected != self.checksum:
            raise ChecksumError(
                f"checkpoint checksum mismatch ({self.checksum[:12]}... vs "
                f"recomputed {expected[:12]}...)")

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Magic + checksum header + pickled body."""
        body = pickle.dumps(
            (self.schema_version, self.kind, self.payload),
            protocol=_PICKLE_PROTOCOL)
        return _MAGIC + self.checksum.encode("ascii") + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "SimCheckpoint":
        """Parse and verify a checkpoint blob."""
        if not data.startswith(_MAGIC):
            raise CheckpointError("not a checkpoint (bad magic)")
        header_end = len(_MAGIC) + 64  # sha256 hex digest
        if len(data) < header_end:
            raise ChecksumError("truncated checkpoint header")
        checksum = data[len(_MAGIC):header_end].decode("ascii", "replace")
        try:
            schema_version, kind, payload = pickle.loads(data[header_end:])
        except Exception as exc:
            raise ChecksumError(f"unreadable checkpoint body: {exc}") from exc
        ckpt = cls(kind=kind, payload=payload, schema_version=schema_version,
                   checksum=checksum)
        ckpt.verify()
        return ckpt

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write atomically: temp file in the same dir, fsync, rename."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".ckpt.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self.to_bytes())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        _fsync_dir(path.parent)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SimCheckpoint":
        """Read and verify a checkpoint file."""
        with Path(path).open("rb") as fh:
            return cls.from_bytes(fh.read())

    @classmethod
    def try_load(cls, path: Union[str, Path]) -> Optional["SimCheckpoint"]:
        """Like :meth:`load`, but a missing/corrupt file is ``None``.

        A corrupt file is deleted so the slot is clean for the next
        write -- recompute-from-scratch is always safe; restoring bad
        state never is.
        """
        path = Path(path)
        try:
            return cls.load(path)
        except FileNotFoundError:
            return None
        except (CheckpointError, OSError):
            try:
                path.unlink()
            except OSError:
                pass
            return None


def _fsync_dir(directory: Path) -> None:
    """Flush a rename to disk (best-effort; not all OSes allow it)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class Checkpointer:
    """Periodic checkpoint trigger + sink for a running harness.

    Parameters
    ----------
    path:
        Where checkpoints are written (atomically overwritten each
        time).  ``None`` keeps them only in :attr:`latest` (useful for
        tests and for the stall watchdog's flush-on-demand).
    every_steps:
        Save cadence in control steps; 0 disables the periodic trigger
        (budget exits and the watchdog can still force a save).
    sink:
        Optional extra callable invoked with every saved checkpoint.
    """

    def __init__(self, path: Union[str, Path, None] = None,
                 every_steps: int = 0,
                 sink: Optional[Callable[[SimCheckpoint], None]] = None) -> None:
        if every_steps < 0:
            raise ValueError("every_steps must be non-negative")
        self.path = Path(path) if path is not None else None
        self.every_steps = every_steps
        self.sink = sink
        #: The most recent checkpoint handed to :meth:`save`.
        self.latest: Optional[SimCheckpoint] = None
        #: Checkpoints saved so far.
        self.saves = 0

    def due(self, step_index: int) -> bool:
        """Whether the periodic cadence calls for a save now."""
        return (self.every_steps > 0 and step_index > 0
                and step_index % self.every_steps == 0)

    def save(self, checkpoint: SimCheckpoint) -> None:
        """Record (and, when configured, persist) a checkpoint."""
        # Registry-only instrumentation: this can run on the watchdog
        # thread, and the tracer's span stack is main-thread-only.
        ob = obs.session()
        started = time.monotonic() if ob is not None else 0.0
        self.latest = checkpoint
        self.saves += 1
        if self.path is not None:
            checkpoint.save(self.path)
        if self.sink is not None:
            self.sink(checkpoint)
        if ob is not None:
            reg = ob.registry
            reg.counter("durability.checkpoint_saves").inc()
            reg.histogram("durability.checkpoint_save_s").observe(
                time.monotonic() - started)

    def flush(self) -> None:
        """Persist :attr:`latest` now (watchdog / stall path)."""
        if self.latest is not None and self.path is not None:
            self.latest.save(self.path)
