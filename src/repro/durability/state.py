"""The versioned ``state_dict`` / ``load_state_dict`` discipline.

Every stateful component of the simulator exposes a ``state_dict()``
returning a plain dict of its mutable runtime state, and a
``load_state_dict(state)`` that restores it *in place* -- child
objects are mutated, never replaced, so live references (a phone's
pack, a supervisor's shared event log) stay valid across a restore.

Each state dict is tagged with the emitting class and a per-class
schema version via :func:`pack_state`; :func:`unpack_state` validates
both on the way back in.  A class bumps its version when the meaning
of its payload changes, so a checkpoint written by old code fails
loudly instead of restoring garbage.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "StateError",
    "StateVersionError",
    "StateMismatchError",
    "pack_state",
    "unpack_state",
    "class_tag",
]

#: Reserved keys of a packed state dict.
CLASS_KEY = "__class__"
VERSION_KEY = "__version__"


class StateError(RuntimeError):
    """Base class for state-restore failures."""


class StateVersionError(StateError):
    """A state dict's schema version does not match the loading code."""


class StateMismatchError(StateError):
    """A state dict was offered to an object of the wrong shape."""


def class_tag(obj: Any) -> str:
    """The fully qualified class name used to tag state dicts."""
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def pack_state(obj: Any, version: int, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Tag ``payload`` with the emitting class and schema version."""
    state = {CLASS_KEY: class_tag(obj), VERSION_KEY: version}
    state.update(payload)
    return state


def unpack_state(obj: Any, state: Dict[str, Any], version: int) -> Dict[str, Any]:
    """Validate a packed state dict against ``obj`` and ``version``.

    Returns the payload (the dict minus the tag keys).  Raises
    :class:`StateMismatchError` when the state was written by a
    different class and :class:`StateVersionError` on a version skew.
    """
    if not isinstance(state, dict) or CLASS_KEY not in state:
        raise StateMismatchError(
            f"not a packed state dict for {class_tag(obj)}: {type(state).__name__}")
    written_by = state[CLASS_KEY]
    expected = class_tag(obj)
    if written_by != expected:
        raise StateMismatchError(
            f"state written by {written_by} offered to {expected}")
    written_version = state.get(VERSION_KEY)
    if written_version != version:
        raise StateVersionError(
            f"{expected} expects state version {version}, got {written_version}")
    return {k: v for k, v in state.items() if k not in (CLASS_KEY, VERSION_KEY)}
