"""Run budgets and the heartbeat stall watchdog.

A :class:`RunBudget` gives a run explicit wall-clock and control-step
ceilings.  The harness polls it at the top of each step — a point
where the simulation state is consistent — so blowing the budget
triggers a *clean checkpoint-then-exit* (:class:`BudgetExceededError`
carrying the final checkpoint) instead of a timeout kill that discards
the work.

The :class:`HeartbeatWatchdog` covers the complementary failure: a
cell that stops making progress entirely (deadlocked dependency,
pathological substep count).  The loop beats a :class:`Heartbeat`
every step; a daemon thread watches the beat age, and on a stall it
flushes the cell's last checkpoint to disk and force-expires the
cell's cooperative deadline so the cell retires as a contained timeout
failure the moment it runs again — with its checkpoint already safe.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Optional

from .deadline import expire_deadline

if TYPE_CHECKING:
    from .snapshot import SimCheckpoint

__all__ = ["BudgetExceededError", "RunBudget", "Heartbeat", "HeartbeatWatchdog"]


class BudgetExceededError(RuntimeError):
    """A run hit its wall-clock or step budget.

    ``checkpoint`` carries the clean final state when the harness was
    able to snapshot before exiting; resume from it to continue.
    """

    def __init__(self, message: str,
                 checkpoint: Optional["SimCheckpoint"] = None) -> None:
        super().__init__(message)
        self.checkpoint = checkpoint


class RunBudget:
    """Wall-clock and step ceilings for one run.

    Either limit may be ``None`` (unlimited).  The wall clock starts
    at construction; :meth:`restart` re-arms it (a resumed run gets a
    fresh wall budget — the spent wall time died with the old process,
    while ``max_steps`` counts *total* simulation steps and therefore
    carries across restores via the step index).
    """

    def __init__(self, max_wall_s: Optional[float] = None,
                 max_steps: Optional[int] = None) -> None:
        if max_wall_s is not None and max_wall_s <= 0:
            raise ValueError("max_wall_s must be positive")
        if max_steps is not None and max_steps <= 0:
            raise ValueError("max_steps must be positive")
        self.max_wall_s = max_wall_s
        self.max_steps = max_steps
        self._started = time.monotonic()

    def restart(self) -> None:
        """Re-arm the wall clock (call when resuming)."""
        self._started = time.monotonic()

    @property
    def elapsed_wall_s(self) -> float:
        """Wall seconds since construction / the last restart."""
        return time.monotonic() - self._started

    def exceeded(self, step_index: int) -> Optional[str]:
        """The reason the budget is blown, or ``None`` while inside it."""
        if self.max_steps is not None and step_index >= self.max_steps:
            return f"step budget of {self.max_steps} steps reached"
        if self.max_wall_s is not None:
            elapsed = time.monotonic() - self._started
            if elapsed >= self.max_wall_s:
                return (f"wall-clock budget of {self.max_wall_s} s reached "
                        f"({elapsed:.1f} s elapsed)")
        return None


class Heartbeat:
    """A progress beacon the run loop touches every step."""

    def __init__(self) -> None:
        self._last = time.monotonic()
        self._lock = threading.Lock()

    def beat(self) -> None:
        """Record progress (called from the run loop)."""
        with self._lock:
            self._last = time.monotonic()

    @property
    def age_s(self) -> float:
        """Seconds since the last beat."""
        with self._lock:
            return time.monotonic() - self._last


class HeartbeatWatchdog:
    """Daemon thread that fires ``on_stall`` when the heartbeat goes quiet.

    Parameters
    ----------
    heartbeat:
        The :class:`Heartbeat` the supervised loop beats.
    stall_timeout_s:
        Beat age that counts as a stall.
    on_stall:
        Callback invoked (once per stall episode) from the watchdog
        thread.  The stock wiring flushes the run's latest checkpoint
        and force-expires the run thread's cooperative deadline.
    poll_s:
        Check cadence; defaults to a quarter of the stall timeout.
    """

    def __init__(self, heartbeat: Heartbeat, stall_timeout_s: float,
                 on_stall: Callable[[], None],
                 poll_s: Optional[float] = None) -> None:
        if stall_timeout_s <= 0:
            raise ValueError("stall_timeout_s must be positive")
        self.heartbeat = heartbeat
        self.stall_timeout_s = stall_timeout_s
        self.on_stall = on_stall
        self.poll_s = poll_s if poll_s is not None else max(0.05, stall_timeout_s / 4.0)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        #: Stall episodes observed.
        self.stalls = 0

    def start(self) -> "HeartbeatWatchdog":
        self._thread = threading.Thread(target=self._watch, daemon=True,
                                        name="capman-watchdog")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.poll_s * 4 + 1.0)
            self._thread = None

    def __enter__(self) -> "HeartbeatWatchdog":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _watch(self) -> None:
        fired = False
        while not self._stop.wait(self.poll_s):
            if self.heartbeat.age_s >= self.stall_timeout_s:
                if not fired:
                    fired = True
                    self.stalls += 1
                    try:
                        self.on_stall()
                    except Exception:
                        pass  # a watchdog must never take the run down
            else:
                fired = False


def retire_on_stall(checkpointer, thread_ident: int,
                    label: str = "run") -> Callable[[], None]:
    """The stock ``on_stall`` wiring: flush checkpoint, expire deadline."""
    def _on_stall() -> None:
        if checkpointer is not None:
            checkpointer.flush()
        expire_deadline(
            thread_ident,
            f"{label} stalled (no heartbeat); retired by watchdog after "
            f"checkpointing")
    return _on_stall
