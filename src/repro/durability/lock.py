"""Advisory file locking for multi-runner shared directories.

Two :class:`~repro.sim.sweep.ScenarioRunner` processes pointed at the
same cache directory each write entries atomically (temp + rename),
but without a lock their *sequences* of filesystem operations can
interleave — and any future read-modify-write on shared metadata
would race outright.  :class:`FileLock` wraps ``fcntl.flock`` on an
adjacent lock file: cheap, advisory (cooperating writers only), and
automatically released by the kernel if the holder dies, so a crashed
runner can never wedge the cache.

On platforms without ``fcntl`` the lock degrades to a warned no-op —
single-writer atomic-rename semantics, exactly the pre-lock contract.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Optional, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileLock"]

_WARNED = False


class FileLock:
    """An exclusive advisory lock on a path (re-entrant per instance)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._depth = 0

    def acquire(self) -> None:
        """Block until the lock is held."""
        if self._depth > 0:
            self._depth += 1
            return
        if fcntl is None:  # pragma: no cover - non-POSIX
            global _WARNED
            if not _WARNED:
                _WARNED = True
                warnings.warn(
                    "fcntl is unavailable; cache writes fall back to "
                    "unlocked atomic renames (single-writer semantics)",
                    RuntimeWarning, stacklevel=3)
            self._depth = 1
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
        except BaseException:
            os.close(fd)
            raise
        self._fd = fd
        self._depth = 1

    def release(self) -> None:
        """Drop the lock (kernel drops it anyway if the process dies)."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth > 0:
            return
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)  # type: ignore[union-attr]
            finally:
                os.close(self._fd)
                self._fd = None

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._depth > 0

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
