"""Write-ahead run journal: fsync'd JSONL with torn-tail recovery.

The sweep engine appends one record per cell event (start, commit) to
a :class:`RunJournal`.  Each record is a single JSON line carrying a
monotonically increasing sequence number and a checksum over its own
content, and every append is flushed *and* fsync'd before the caller
proceeds -- that is what makes the journal a write-ahead log: a cell
is only ever considered committed once its commit record is durable.

A SIGKILL can still land mid-``write``; the victim is the *tail* line,
which is then incomplete or fails its checksum.  :meth:`RunJournal.replay`
detects that by validating sequence numbers and checksums front to
back, stops at the first bad record, and (by default) truncates the
file back to the last good byte offset -- the recovery is "forget the
torn record", never "crash" and never "trust bad state".

Binary payloads (pickled specs/results) travel base64-encoded via
:func:`encode_blob` / :func:`decode_blob`.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .. import obs

__all__ = ["JournalError", "RunJournal", "encode_blob", "decode_blob"]


class JournalError(RuntimeError):
    """The journal is unusable (missing header, wrong file, ...)."""


def encode_blob(data: bytes) -> str:
    """Bytes -> JSON-safe base64 text."""
    return base64.b64encode(data).decode("ascii")


def decode_blob(text: str) -> bytes:
    """Base64 text -> bytes."""
    return base64.b64decode(text.encode("ascii"))


def _record_crc(seq: int, rtype: str, data: Dict[str, Any]) -> str:
    canon = json.dumps({"seq": seq, "type": rtype, "data": data},
                       sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


class RunJournal:
    """Append-only JSONL journal with per-record checksums.

    Open for appending with the constructor (it validates and recovers
    any existing tail first); read one back with :meth:`replay`.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        records, good_bytes, self._dropped = self._scan(self.path)
        if good_bytes is not None:
            _truncate(self.path, good_bytes)
        self._seq = records[-1]["seq"] + 1 if records else 0
        self._fh = self.path.open("a", encoding="utf-8")
        # Appends are serialised: the distributed coordinator journals
        # lease grants from connection-handler threads while the runner
        # thread journals commits, and interleaved writes would tear
        # both records.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next append will carry."""
        return self._seq

    @property
    def recovered_records(self) -> int:
        """Torn/corrupt tail records dropped when the journal was opened."""
        return self._dropped

    def append(self, rtype: str, data: Dict[str, Any]) -> int:
        """Durably append one record; returns its sequence number.

        Thread-safe: concurrent appenders are serialised, each record
        is fully written and fsync'd before the next begins.
        """
        ob = obs.session()
        started = time.monotonic() if ob is not None else 0.0
        with self._lock:
            if self._fh is None:
                raise JournalError("journal is closed")
            seq = self._seq
            record = {"seq": seq, "type": rtype, "data": data,
                      "crc": _record_crc(seq, rtype, data)}
            self._fh.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._seq += 1
        if ob is not None:
            reg = ob.registry
            reg.counter("durability.journal_appends").inc()
            reg.histogram("durability.journal_append_s").observe(
                time.monotonic() - started)
        return seq

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @classmethod
    def replay(cls, path: Union[str, Path],
               recover: bool = True) -> List[Dict[str, Any]]:
        """Read every valid record, in order.

        Validation stops at the first torn/corrupt/out-of-sequence
        line; with ``recover=True`` (the default) the file is truncated
        back to the last good record so subsequent appends extend a
        clean log.  The records after the bad one are unreachable by
        construction -- the journal is strictly sequential, so nothing
        after a torn write can be trusted.
        """
        path = Path(path)
        if not path.exists():
            raise JournalError(f"no journal at {path}")
        records, good_bytes, _ = cls._scan(path)
        if recover and good_bytes is not None:
            _truncate(path, good_bytes)
        return records

    @classmethod
    def replay_typed(cls, path: Union[str, Path], rtypes: Tuple[str, ...],
                     recover: bool = True) -> List[Dict[str, Any]]:
        """Like :meth:`replay`, keeping only records of the given types.

        Convenience for journals that multiplex record families (the
        service's job WAL interleaves ``job_submit``/``job_done`` with
        whatever future record types ride along): validation and tail
        recovery still run over the whole file, the filter applies to
        the returned view only.
        """
        return [record for record in cls.replay(path, recover=recover)
                if record["type"] in rtypes]

    @staticmethod
    def _scan(path: Path) -> Tuple[List[Dict[str, Any]], Optional[int], int]:
        """(valid records, truncate-to offset or None, dropped lines)."""
        records: List[Dict[str, Any]] = []
        if not path.exists():
            return records, None, 0
        good_offset = 0
        bad_lines = 0
        with path.open("rb") as fh:
            raw = fh.read()
        offset = 0
        for line in raw.splitlines(keepends=True):
            complete = line.endswith(b"\n")
            text = line.rstrip(b"\r\n")
            record = _parse_record(text) if complete and text else None
            expected_seq = records[-1]["seq"] + 1 if records else 0
            if record is None or record["seq"] != expected_seq:
                bad_lines += sum(1 for l in raw[offset:].splitlines() if l.strip())
                return records, offset, bad_lines
            records.append(record)
            offset += len(line)
        tail = raw[offset:]
        if tail.strip():
            # Torn final line without a newline.
            bad_lines += 1
            return records, offset, bad_lines
        return records, None, 0


def _parse_record(text: bytes) -> Optional[Dict[str, Any]]:
    try:
        record = json.loads(text.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    try:
        seq = record["seq"]
        rtype = record["type"]
        data = record["data"]
        crc = record["crc"]
    except KeyError:
        return None
    if not isinstance(seq, int) or not isinstance(rtype, str) \
            or not isinstance(data, dict):
        return None
    if crc != _record_crc(seq, rtype, data):
        return None
    return {"seq": seq, "type": rtype, "data": data}


def _truncate(path: Path, size: int) -> None:
    if path.stat().st_size <= size:
        return
    with path.open("rb+") as fh:
        fh.truncate(size)
        fh.flush()
        os.fsync(fh.fileno())
