#!/usr/bin/env python
"""Distributed-sweep chaos smoke drill.

What it does, end to end:

1. runs a small reference sweep serially in this process;
2. runs the same sweep through the ``DistributedExecutor`` with
   spawned TCP workers, a journal and a networked cache server --
   and, while cells are in flight, SIGKILLs a worker mid-cell and
   partitions (then heals) the cache server;
3. checks the robustness contract:

   * the distributed result is byte-identical to the serial one,
   * no cell was lost (every slot holds a real result), and
   * the journal committed every cell exactly once -- duplicate
     leases and stolen work never double-commit.

Exits 0 on success, 1 on any violated guarantee.  CI runs this as the
``dist-chaos-smoke`` job; it is also handy locally after touching the
distributed backend::

    python scripts/dist_chaos_smoke.py
"""

import pickle
import sys
import tempfile
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.sim.cache_server import CacheServer, NetworkSweepCache  # noqa: E402
from repro.sim.chaos import (BackendChaos, journal_commit_counts,  # noqa: E402
                             run_backend_chaos)
from repro.sim.distributed import DistributedExecutor  # noqa: E402
from repro.sim.sweep import ScenarioRunner, SweepSpec  # noqa: E402
from repro.testing import SlowDualPolicy  # noqa: E402
from repro.workload.generators import VideoWorkload  # noqa: E402
from repro.workload.traces import record_trace  # noqa: E402


def _spec() -> SweepSpec:
    trace = record_trace(VideoWorkload(seed=5), 120.0)
    # The delay burns wall time only, keeping cells in flight long
    # enough for the SIGKILL and the partition to land mid-sweep.
    policies = {
        f"Dual{mah}": SlowDualPolicy(capacity_mah=float(mah), delay_s=0.3)
        for mah in (30, 40, 50, 60, 70)
    }
    return SweepSpec(policies=policies, traces={"Video": trace},
                     max_duration_s=900.0)


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


def main() -> int:
    spec = _spec()
    print(f"[dist-chaos-smoke] reference serial run ({len(spec)} cells)...")
    serial = ScenarioRunner(workers=1).run(spec)

    tmp = Path(tempfile.mkdtemp(prefix="dist-chaos-smoke-"))
    server = CacheServer(tmp / "served")
    server.start()
    executor = DistributedExecutor(lease_timeout_s=1.0, spawn_workers=2,
                                   workers_grace_s=5.0)
    journal = tmp / "run.journal"
    runner = ScenarioRunner(
        executor=executor, journal=journal,
        cache=NetworkSweepCache(server.address, tmp / "fallback",
                                rpc_timeout_s=0.5, probe_interval_s=0.1))
    chaos = BackendChaos(kill_workers=1, kill_after_s=0.2,
                         partition_cache_after_s=0.4,
                         heal_cache_after_s=1.2, duplicate_leases=1)
    print("[dist-chaos-smoke] chaotic distributed run "
          "(SIGKILL a worker, partition + heal the cache server, "
          "duplicate a lease)...")
    try:
        report = run_backend_chaos(spec, runner, chaos, cache_server=server)
    finally:
        server.stop()

    print(f"[dist-chaos-smoke] killed workers: {report.killed_pids}")
    print(f"[dist-chaos-smoke] cache partitioned/healed: "
          f"{report.cache_partitioned}/{report.cache_healed}")
    print(f"[dist-chaos-smoke] dist stats: {report.dist_stats}")

    failures = []
    if not report.killed_pids:
        failures.append("no worker was SIGKILLed (kill window missed)")
    if not (report.cache_partitioned and report.cache_healed):
        failures.append("cache server was not partitioned and healed")
    if report.lost_cells:
        failures.append(f"{report.lost_cells} cells lost")
    if report.double_commits:
        failures.append(f"{report.double_commits} cells double-committed")
    counts = journal_commit_counts(journal)
    if sorted(counts) != [cell.index for cell in spec.expand()]:
        failures.append("journal is missing cell commits")
    if _cell_bytes(report.result) != _cell_bytes(serial):
        failures.append("distributed result differs from serial bytes")

    if failures:
        for failure in failures:
            print(f"[dist-chaos-smoke] FAIL: {failure}")
        return 1
    print(f"[dist-chaos-smoke] OK: {len(spec)} cells byte-identical to "
          f"serial, {len(counts)} journal commits, all exactly-once")
    return 0


if __name__ == "__main__":
    sys.exit(main())
