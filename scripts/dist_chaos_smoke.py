#!/usr/bin/env python
"""Distributed-sweep chaos smoke drill.

What it does, end to end:

1. runs a small reference sweep serially in this process;
2. runs the same sweep through the ``DistributedExecutor`` with
   spawned TCP workers, a journal and a networked cache server --
   and, while cells are in flight, SIGKILLs a worker mid-cell and
   partitions (then heals) the cache server;
3. checks the robustness contract:

   * the distributed result is byte-identical to the serial one,
   * no cell was lost (every slot holds a real result), and
   * the journal committed every cell exactly once -- duplicate
     leases and stolen work never double-commit.

With ``--kill-coordinator`` the drill instead targets the coordinator
itself: a child process runs a journalled, authenticated distributed
sweep, the parent SIGKILLs it while cells are committed *and* leases
are in flight, then restarts it from the journal on the same port.
The restarted coordinator must replay every committed cell with zero
recomputation, reclaim the orphaned leases through the retry policy,
re-attach the surviving worker fleet, and finish byte-identical to
serial with every journal cell committed exactly once.

Exits 0 on success, 1 on any violated guarantee.  CI runs these as the
``dist-chaos-smoke`` and ``coordinator-failover-smoke`` jobs; they are
also handy locally after touching the distributed backend::

    python scripts/dist_chaos_smoke.py
    python scripts/dist_chaos_smoke.py --kill-coordinator
"""

import argparse
import json
import os
import pickle
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))
if str(_REPO / "tests") not in sys.path:
    sys.path.insert(0, str(_REPO / "tests"))

from repro.sim.cache_server import CacheServer, NetworkSweepCache  # noqa: E402
from repro.sim.chaos import (BackendChaos, journal_commit_counts,  # noqa: E402
                             journal_lease_grants, run_backend_chaos)
from repro.sim.distributed import DistributedExecutor  # noqa: E402
from repro.sim.sweep import ScenarioRunner, SweepSpec  # noqa: E402
from repro.testing import SlowDualPolicy  # noqa: E402
from repro.workload.generators import VideoWorkload  # noqa: E402
from repro.workload.traces import record_trace  # noqa: E402

import dist_failover_helper  # noqa: E402  (from tests/)


def _spec() -> SweepSpec:
    trace = record_trace(VideoWorkload(seed=5), 120.0)
    # The delay burns wall time only, keeping cells in flight long
    # enough for the SIGKILL and the partition to land mid-sweep.
    policies = {
        f"Dual{mah}": SlowDualPolicy(capacity_mah=float(mah), delay_s=0.3)
        for mah in (30, 40, 50, 60, 70)
    }
    return SweepSpec(policies=policies, traces={"Video": trace},
                     max_duration_s=900.0)


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


def main() -> int:
    spec = _spec()
    print(f"[dist-chaos-smoke] reference serial run ({len(spec)} cells)...")
    serial = ScenarioRunner(workers=1).run(spec)

    tmp = Path(tempfile.mkdtemp(prefix="dist-chaos-smoke-"))
    server = CacheServer(tmp / "served")
    server.start()
    executor = DistributedExecutor(lease_timeout_s=1.0, spawn_workers=2,
                                   workers_grace_s=5.0)
    journal = tmp / "run.journal"
    runner = ScenarioRunner(
        executor=executor, journal=journal,
        cache=NetworkSweepCache(server.address, tmp / "fallback",
                                rpc_timeout_s=0.5, probe_interval_s=0.1))
    chaos = BackendChaos(kill_workers=1, kill_after_s=0.2,
                         partition_cache_after_s=0.4,
                         heal_cache_after_s=1.2, duplicate_leases=1)
    print("[dist-chaos-smoke] chaotic distributed run "
          "(SIGKILL a worker, partition + heal the cache server, "
          "duplicate a lease)...")
    try:
        report = run_backend_chaos(spec, runner, chaos, cache_server=server)
    finally:
        server.stop()

    print(f"[dist-chaos-smoke] killed workers: {report.killed_pids}")
    print(f"[dist-chaos-smoke] cache partitioned/healed: "
          f"{report.cache_partitioned}/{report.cache_healed}")
    print(f"[dist-chaos-smoke] dist stats: {report.dist_stats}")

    failures = []
    if not report.killed_pids:
        failures.append("no worker was SIGKILLed (kill window missed)")
    if not (report.cache_partitioned and report.cache_healed):
        failures.append("cache server was not partitioned and healed")
    if report.lost_cells:
        failures.append(f"{report.lost_cells} cells lost")
    if report.double_commits:
        failures.append(f"{report.double_commits} cells double-committed")
    counts = journal_commit_counts(journal)
    if sorted(counts) != [cell.index for cell in spec.expand()]:
        failures.append("journal is missing cell commits")
    if _cell_bytes(report.result) != _cell_bytes(serial):
        failures.append("distributed result differs from serial bytes")

    if failures:
        for failure in failures:
            print(f"[dist-chaos-smoke] FAIL: {failure}")
        return 1
    print(f"[dist-chaos-smoke] OK: {len(spec)} cells byte-identical to "
          f"serial, {len(counts)} journal commits, all exactly-once")
    return 0


# ----------------------------------------------------------------------
# --kill-coordinator: SIGKILL + restart-from-journal failover drill
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _failover_env() -> dict:
    env = dict(os.environ)
    extra = os.pathsep.join([str(_REPO / "src"), str(_REPO / "tests")])
    current = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{extra}{os.pathsep}{current}" if current else extra
    # The drill runs fully authenticated end to end.
    env.setdefault("CAPMAN_DIST_SECRET", "failover-drill-secret")
    return env


def _spawn_incarnation(run_dir: Path, port: int, spawn_workers: int,
                       env: dict, tag: str) -> subprocess.Popen:
    code = ("import sys, dist_failover_helper; "
            "dist_failover_helper.main(sys.argv[1], int(sys.argv[2]), "
            "int(sys.argv[3]))")
    log = open(run_dir / f"{tag}.log", "wb")
    try:
        return subprocess.Popen(
            [sys.executable, "-c", code, str(run_dir), str(port),
             str(spawn_workers)],
            env=env, stdout=log, stderr=subprocess.STDOUT)
    finally:
        log.close()


def _journal_state(journal: Path):
    try:
        return journal_commit_counts(journal), journal_lease_grants(journal)
    except Exception:
        return {}, {}


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
        return True
    except (ProcessLookupError, PermissionError):
        return False


def kill_coordinator_drill() -> int:
    if not hasattr(signal, "SIGKILL"):
        print("[coordinator-failover] SKIP: POSIX only")
        return 0
    spec = dist_failover_helper.build_spec()
    total = len(spec)
    print(f"[coordinator-failover] reference serial run ({total} cells)...")
    serial = ScenarioRunner(workers=1).run(spec)

    run_dir = Path(tempfile.mkdtemp(prefix="coord-failover-"))
    journal = run_dir / "run.journal"
    pids_file = run_dir / "worker_pids.json"
    port = _free_port()
    env = _failover_env()
    worker_pids = []
    first = second = None
    failures = []
    try:
        print("[coordinator-failover] first incarnation up "
              f"(port {port}, 2 TCP workers)...")
        first = _spawn_incarnation(run_dir, port, spawn_workers=2,
                                   env=env, tag="first")
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline:
            if first.poll() is not None:
                print("[coordinator-failover] FAIL: first incarnation "
                      "finished before the kill window")
                return 1
            commits, grants = _journal_state(journal)
            in_flight = [i for i in grants if i not in commits]
            if (pids_file.exists() and 2 <= len(commits) < total
                    and in_flight):
                break
            time.sleep(0.01)
        else:
            print("[coordinator-failover] FAIL: kill window never opened")
            return 1
        worker_pids = json.loads(pids_file.read_text())
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=30.0)

        commits_at_kill, grants_at_kill = _journal_state(journal)
        orphaned = {index: count for index, count in grants_at_kill.items()
                    if index not in commits_at_kill}
        surviving = [pid for pid in worker_pids if _alive(pid)]
        print(f"[coordinator-failover] SIGKILLed coordinator with "
              f"{len(commits_at_kill)}/{total} cells committed, "
              f"{sum(orphaned.values())} orphaned lease grants, "
              f"{len(surviving)} surviving workers")
        if not orphaned:
            failures.append("no in-flight dispatch state survived")
        if not surviving:
            failures.append("no worker survived the coordinator SIGKILL")

        print("[coordinator-failover] restarting from the journal on the "
              "same port...")
        second = _spawn_incarnation(run_dir, port, spawn_workers=0,
                                    env=env, tag="second")
        if second.wait(timeout=180.0) != 0:
            tail = (run_dir / "second.log").read_bytes()[-2000:]
            print(tail.decode(errors="replace"))
            failures.append(
                f"second incarnation exited {second.returncode}")
        else:
            counts = journal_commit_counts(journal)
            stats = json.loads((run_dir / "stats.json").read_text())
            print(f"[coordinator-failover] resumed {stats['cells_resumed']} "
                  f"cells, computed {stats['cells_computed']}, recovered "
                  f"{stats['dist_recovered_leases']} leases, "
                  f"{stats['dist_worker_attaches']} worker attaches")
            if sorted(counts) != [cell.index for cell in spec.expand()]:
                failures.append("journal is missing cell commits (lost cells)")
            if set(counts.values()) != {1}:
                failures.append("a journal cell committed more than once")
            if stats["cells_resumed"] != len(commits_at_kill):
                failures.append(
                    f"recomputed committed cells: resumed "
                    f"{stats['cells_resumed']} != {len(commits_at_kill)}")
            if stats["cells_failed"]:
                failures.append(f"{stats['cells_failed']} cells failed")
            if stats["dist_recovered_leases"] != sum(orphaned.values()):
                failures.append(
                    f"lease recovery mismatch: "
                    f"{stats['dist_recovered_leases']} recovered != "
                    f"{sum(orphaned.values())} orphaned")
            if stats["dist_worker_attaches"] < len(surviving):
                failures.append("surviving workers did not all re-attach")
            final = pickle.loads((run_dir / "result.pkl").read_bytes())
            if final != _cell_bytes(serial):
                failures.append("failover result differs from serial bytes")
    finally:
        for proc in (first, second):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
        for pid in worker_pids:
            if _alive(pid):
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass

    if failures:
        for failure in failures:
            print(f"[coordinator-failover] FAIL: {failure}")
        return 1
    print(f"[coordinator-failover] OK: {total} cells byte-identical to "
          "serial across the coordinator SIGKILL, zero lost cells, zero "
          "double commits, zero recomputed committed cells")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kill-coordinator", action="store_true",
                        help="run the coordinator SIGKILL + "
                             "restart-from-journal failover drill")
    args = parser.parse_args()
    sys.exit(kill_coordinator_drill() if args.kill_coordinator else main())
