#!/usr/bin/env python
"""Kill-9 resume smoke drill for the sweep *service* (HTTP layer).

One level up the stack from ``resume_smoke.py``: the victim is the
whole API server, not a bare runner.  End to end:

1. boots ``python -m repro.service`` on an ephemeral port with a
   fresh state root and submits a slow grid over HTTP (the
   ``slow_dual`` policy burns wall time per cell, so the kill lands
   mid-sweep);
2. watches the job's per-cell run journal until some -- but not all --
   cells have durable commits, then SIGKILLs the server;
3. restarts the service on the *same* state root: WAL replay must
   surface the job unprompted and resume its sweep;
4. checks the service durability guarantees:

   * every cell committed exactly once across both incarnations
     (zero lost, zero double-committed),
   * everything committed before the kill was replayed, not recomputed
     (``cells_resumed`` covers the pre-kill commits), and
   * the HTTP-served results are byte-identical to a direct in-process
     :class:`ScenarioRunner` run of the same grid.

Exits 0 on success, 1 on any violated guarantee.  CI runs this as the
``service-smoke`` job; it is also handy locally after touching the
service or durability layers::

    python scripts/service_smoke.py
"""

import base64
import json
import os
import pickle
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.service.schemas import parse_spec  # noqa: E402
from repro.sim.chaos import journal_commit_counts  # noqa: E402
from repro.sim.sweep import ScenarioRunner  # noqa: E402

CAPACITIES = (30, 40, 50, 60, 70, 80)
DELAY_S = 0.5

#: The crash-drill grid: six wall-time-burning one-policy cells.
GRID = {
    "policies": {
        f"Slow{mah}": {"type": "slow_dual", "capacity_mah": float(mah),
                       "delay_s": DELAY_S}
        for mah in CAPACITIES
    },
    "traces": {"V": {"workload": "video", "seed": 5, "duration_s": 120.0}},
    "max_duration_s": 900.0,
}


def _api(base, method, path, body=None, timeout=30.0):
    data = None
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(base + path, data=data,
                                     method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _spawn(root: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    env.pop("CAPMAN_DIST_SECRET", None)
    env.pop("CAPMAN_DIST_WORKERS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--root", str(root),
         "--job-runners", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    line = proc.stdout.readline()
    if not line.startswith("listening on http://"):
        raise RuntimeError(f"service did not announce a port: {line!r}")
    proc.base_url = line.split("listening on ", 1)[1].strip()
    return proc


def _wait_for_commits(journal: Path, minimum: int,
                      deadline_s: float = 120.0) -> int:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if journal.exists():
            committed = len(journal_commit_counts(journal))
            if committed >= minimum:
                return committed
        time.sleep(0.02)
    raise RuntimeError(f"no {minimum} commits in {journal} "
                       f"within {deadline_s}s")


def _wait_for_done(base: str, job_id: str,
                   deadline_s: float = 240.0) -> dict:
    deadline = time.monotonic() + deadline_s
    status = None
    while time.monotonic() < deadline:
        code, status = _api(base, "GET", f"/jobs/{job_id}")
        if code == 200 and status.get("state") in ("done", "failed"):
            return status
        time.sleep(0.1)
    raise RuntimeError(f"job {job_id} not terminal within {deadline_s}s "
                       f"(last: {status})")


def main() -> int:
    total = len(CAPACITIES)
    root = Path(tempfile.mkdtemp(prefix="service-smoke-")) / "state"

    print(f"[service-smoke] booting server one (root {root})...")
    first = _spawn(root)
    try:
        code, ack = _api(first.base_url, "POST", "/jobs", body=GRID)
        if code != 201:
            print(f"[service-smoke] FAIL: submit returned {code}: {ack}")
            return 1
        job_id = ack["job_id"]
        run_journal = root / "jobs" / job_id / "run.journal"
        print(f"[service-smoke] job {job_id} accepted "
              f"({ack['cells']} cells)")

        committed_at_kill = _wait_for_commits(run_journal, minimum=2)
        first.kill()
        first.wait(timeout=30)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait(timeout=30)

    print(f"[service-smoke] killed -9 with {committed_at_kill}/{total} "
          f"cells committed")
    if not 1 <= committed_at_kill < total:
        print("[service-smoke] FAIL: kill did not land mid-sweep; "
              "slow the grid down")
        return 1
    pre_kill = journal_commit_counts(run_journal)
    if set(pre_kill.values()) != {1}:
        print(f"[service-smoke] FAIL: pre-kill journal already has "
              f"duplicate commits: {pre_kill}")
        return 1

    print("[service-smoke] booting server two on the same root...")
    second = _spawn(root)
    try:
        code, status = _api(second.base_url, "GET", f"/jobs/{job_id}")
        if code != 200:
            print(f"[service-smoke] FAIL: restarted server does not know "
                  f"the job ({code}: {status})")
            return 1
        status = _wait_for_done(second.base_url, job_id)
        if status["state"] != "done":
            print(f"[service-smoke] FAIL: job finished as {status}")
            return 1

        ok = True
        counts = journal_commit_counts(run_journal)
        if sorted(counts) != list(range(total)):
            print(f"[service-smoke] FAIL: lost cells -- committed "
                  f"{sorted(counts)}, expected {list(range(total))}")
            ok = False
        if set(counts.values()) != {1}:
            print(f"[service-smoke] FAIL: double commits: {counts}")
            ok = False
        stats = status["stats"]
        if stats["cells_resumed"] < max(committed_at_kill, len(pre_kill)):
            print(f"[service-smoke] FAIL: resumed only "
                  f"{stats['cells_resumed']} cells, expected at least "
                  f"{max(committed_at_kill, len(pre_kill))}")
            ok = False
        if stats["cells_resumed"] + stats["cells_computed"] != total:
            print(f"[service-smoke] FAIL: resumed + computed != total "
                  f"({stats})")
            ok = False

        code, results = _api(second.base_url, "GET",
                             f"/jobs/{job_id}/results")
        if code != 200 or results["count"] != total:
            print(f"[service-smoke] FAIL: results fetch ({code})")
            return 1
        served = [base64.b64decode(cell) for cell in results["cells"]]
    finally:
        second.kill()
        second.wait(timeout=30)

    direct = ScenarioRunner(workers=1).run(parse_spec(GRID))
    if served != [pickle.dumps(r, protocol=4) for r in direct.results]:
        print("[service-smoke] FAIL: HTTP-served results are not "
              "byte-identical to the direct in-process run")
        ok = False
    if ok:
        print(f"[service-smoke] OK: {len(pre_kill)} cells replayed from "
              f"the journal, {stats['cells_computed']} computed, all "
              f"{total} committed exactly once and byte-identical to "
              f"the direct run")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
