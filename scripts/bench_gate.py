#!/usr/bin/env python
"""Benchmark-regression gate over the simulation throughput runs.

Compares a freshly produced ``BENCH_sim.json`` (written by
``benchmarks/test_sim_throughput.py``,
``benchmarks/test_fleet_throughput.py``,
``benchmarks/test_dist_throughput.py`` and
``benchmarks/test_service_throughput.py``) against the committed baseline
``benchmarks/baselines/BENCH_sim.baseline.json`` and fails -- nonzero
exit, for CI -- on regression:

* **Deterministic fields match exactly.**  The grid identity, the
  serial run's step/cell accounting (``steps_total``, ``cells_total``,
  ``cells_failed``) and each fleet leg's work accounting (``batch``,
  ``steps_total``, ``fallback_steps``, and for the CAPMAN leg also
  ``adapter_rows``) are machine-independent; any drift means a
  benchmark is no longer measuring the same work and the baseline must
  be consciously regenerated, not silently absorbed.  The distributed
  backend's section additionally pins its robustness invariants --
  ``lost_cells`` and ``double_commits`` are exact-zero in the
  baseline, so any lost or double-committed cell fails the gate as a
  correctness regression, not a perf one.  The service section does
  the same for its HTTP job path (``failed_cells``,
  ``double_commits``) and pins content-hash dedupe
  (``deduped_jobs``).
* **Throughput holds within a tolerance.**  The serial
  ``steps_per_sec`` and each fleet leg's ``device_steps_per_sec`` must
  stay above ``tolerance x baseline`` (default 0.5x, i.e. flag a 2x
  slowdown; CI machines are noisy, real hot-loop regressions are much
  bigger than that).  Override with ``--tolerance`` or the
  ``CAPMAN_BENCH_TOLERANCE`` env var.
* **The fleet speedup floors are absolute.**  Each leg's ``speedup``
  (batched vs serial device-steps/s, both timed on the same host)
  must stay at or above its floor -- ``FLEET_MIN_SPEEDUP`` for the
  Dual leg, ``CAPMAN_FLEET_MIN_SPEEDUP`` for the CAPMAN leg --
  regardless of tolerance: these are the PR-acceptance ratios, not
  machine-dependent rates.

A payload may carry either section alone (each benchmark merges its
own section into ``BENCH_sim.json``); only sections present in the
fresh payload are gated, and only gated sections land in the baseline.

Regenerate the baseline after an intentional change with::

    python -m pytest benchmarks/test_sim_throughput.py \
        benchmarks/test_fleet_throughput.py \
        benchmarks/test_dist_throughput.py --benchmark-only -x -q -s
    python scripts/bench_gate.py --write-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List

REPO = Path(__file__).resolve().parent.parent
FRESH_PATH = REPO / "BENCH_sim.json"
BASELINE_PATH = REPO / "benchmarks" / "baselines" / "BENCH_sim.baseline.json"

#: Fraction of the baseline serial steps/sec the fresh run must hold.
DEFAULT_TOLERANCE = 0.5

#: Machine-independent serial-run fields gated by exact equality.
EXACT_SERIAL_FIELDS = ("steps_total", "cells_total", "cells_computed",
                      "cells_failed")

#: Machine-independent fleet-run fields gated by exact equality.
EXACT_FLEET_FIELDS = ("batch", "steps_total", "fallback_steps")

#: The CAPMAN leg additionally pins its driver mix: every row must
#: ride the compiled-table vector driver, none the scalar adapter.
EXACT_CAPMAN_FLEET_FIELDS = EXACT_FLEET_FIELDS + ("adapter_rows",)

#: Absolute floor on the Dual fleet's batched-vs-serial rate ratio.
FLEET_MIN_SPEEDUP = 50.0

#: Absolute floor for the CAPMAN leg (the PR-acceptance ratio: >= 20x
#: at batch >= 1024 with the full learning path priced in).
CAPMAN_FLEET_MIN_SPEEDUP = 20.0

#: Fleet-shaped sections: name -> (exact fields, absolute speedup floor).
FLEET_SECTIONS = {
    "fleet": (EXACT_FLEET_FIELDS, FLEET_MIN_SPEEDUP),
    "capman_fleet": (EXACT_CAPMAN_FLEET_FIELDS, CAPMAN_FLEET_MIN_SPEEDUP),
}

#: Machine-independent distributed-backend fields gated by exact
#: equality.  ``lost_cells`` and ``double_commits`` are 0 in any sane
#: baseline, so this doubles as a correctness gate on exactly-once
#: commit accounting.
EXACT_DIST_FIELDS = ("cells_total", "steps_total", "workers",
                     "lost_cells", "double_commits")

#: Machine-independent service fields gated by exact equality.
#: ``failed_cells``/``double_commits`` are exact-zero correctness
#: pins; ``deduped_jobs`` pins that an identical resubmission stayed a
#: pure content-hash dedupe.
EXACT_SERVICE_FIELDS = ("cells_total", "steps_total", "deduped_jobs",
                        "failed_cells", "double_commits")


def extract_gated(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The gated subset of a ``BENCH_sim.json`` payload.

    Only this subset lands in the baseline file, so the committed
    baseline never churns on machine-dependent noise (wall times,
    cpu_count, parallel speedups).  Each section (``serial`` sweep,
    ``fleet`` batch) is optional; at least one must be present.
    """
    gated: Dict[str, Any] = {}
    if "serial" in payload:
        serial = payload["serial"]
        gated["grid"] = payload["grid"]
        gated["serial"] = {name: serial[name]
                           for name in EXACT_SERIAL_FIELDS}
        gated["steps_per_sec"] = serial["steps_per_sec"]
    for section, (exact_fields, _) in FLEET_SECTIONS.items():
        if section in payload:
            leg = payload[section]
            gated[section] = {
                **{name: leg[name] for name in exact_fields},
                "device_steps_per_sec": leg["device_steps_per_sec"],
                "speedup": leg["speedup"],
            }
    if "distributed" in payload:
        leg = payload["distributed"]
        gated["distributed"] = {
            **{name: leg[name] for name in EXACT_DIST_FIELDS},
            "steps_per_sec": leg["steps_per_sec"],
        }
    if "service" in payload:
        leg = payload["service"]
        gated["service"] = {
            **{name: leg[name] for name in EXACT_SERVICE_FIELDS},
            "steps_per_sec": leg["steps_per_sec"],
        }
    if not gated:
        raise KeyError("payload has no 'serial', 'fleet', 'capman_fleet', "
                       "'distributed' or 'service' section; run the "
                       "throughput benchmarks first")
    return gated


def compare(fresh: Dict[str, Any], baseline: Dict[str, Any],
            tolerance: float) -> List[str]:
    """Human-readable regression descriptions (empty == gate passes).

    Only sections present in the *fresh* payload are gated (a partial
    benchmark run gates what it measured); a section present in fresh
    but missing from the baseline is a hard failure -- regenerate the
    baseline consciously.
    """
    problems: List[str] = []
    if "serial" in fresh:
        if "serial" not in baseline:
            problems.append("fresh payload has a serial section but the "
                            "baseline does not; regenerate the baseline "
                            "with --write-baseline")
        else:
            if fresh["grid"] != baseline["grid"]:
                problems.append(
                    f"grid identity changed:\n"
                    f"  baseline: {baseline['grid']}\n"
                    f"  fresh:    {fresh['grid']}")
            for name in EXACT_SERIAL_FIELDS:
                got, want = fresh["serial"][name], baseline["serial"][name]
                if got != want:
                    problems.append(
                        f"serial.{name}: expected exactly {want}, got {got} "
                        f"(deterministic field -- the benchmark's work "
                        f"changed)")
            floor = tolerance * baseline["steps_per_sec"]
            if fresh["steps_per_sec"] < floor:
                problems.append(
                    f"throughput regression: serial steps_per_sec "
                    f"{fresh['steps_per_sec']:.0f} < {floor:.0f} "
                    f"({tolerance:g} x baseline "
                    f"{baseline['steps_per_sec']:.0f})")
    for section, (exact_fields, min_speedup) in FLEET_SECTIONS.items():
        if section not in fresh:
            continue
        if section not in baseline:
            problems.append(f"fresh payload has a {section} section but "
                            f"the baseline does not; regenerate the "
                            f"baseline with --write-baseline")
        else:
            for name in exact_fields:
                got, want = fresh[section][name], baseline[section][name]
                if got != want:
                    problems.append(
                        f"{section}.{name}: expected exactly {want}, got "
                        f"{got} (deterministic field -- the benchmark's "
                        f"work changed)")
            floor = tolerance * baseline[section]["device_steps_per_sec"]
            if fresh[section]["device_steps_per_sec"] < floor:
                problems.append(
                    f"throughput regression: {section} "
                    f"device_steps_per_sec "
                    f"{fresh[section]['device_steps_per_sec']:.0f} < "
                    f"{floor:.0f} ({tolerance:g} x baseline "
                    f"{baseline[section]['device_steps_per_sec']:.0f})")
        if fresh[section]["speedup"] < min_speedup:
            problems.append(
                f"{section} speedup collapse: "
                f"{fresh[section]['speedup']:.1f}x < required "
                f"{min_speedup:g}x over the serial scalar loop "
                f"(absolute floor, tolerance does not apply)")
    if "distributed" in fresh:
        if "distributed" not in baseline:
            problems.append("fresh payload has a distributed section but "
                            "the baseline does not; regenerate the "
                            "baseline with --write-baseline")
        else:
            for name in EXACT_DIST_FIELDS:
                got = fresh["distributed"][name]
                want = baseline["distributed"][name]
                if got != want:
                    problems.append(
                        f"distributed.{name}: expected exactly {want}, "
                        f"got {got} (deterministic field -- "
                        f"exactly-once accounting or the benchmark's "
                        f"work changed)")
            floor = tolerance * baseline["distributed"]["steps_per_sec"]
            if fresh["distributed"]["steps_per_sec"] < floor:
                problems.append(
                    f"throughput regression: distributed steps_per_sec "
                    f"{fresh['distributed']['steps_per_sec']:.0f} < "
                    f"{floor:.0f} ({tolerance:g} x baseline "
                    f"{baseline['distributed']['steps_per_sec']:.0f}) "
                    f"-- lease/framing overhead grew")
    if "service" in fresh:
        if "service" not in baseline:
            problems.append("fresh payload has a service section but "
                            "the baseline does not; regenerate the "
                            "baseline with --write-baseline")
        else:
            for name in EXACT_SERVICE_FIELDS:
                got = fresh["service"][name]
                want = baseline["service"][name]
                if got != want:
                    problems.append(
                        f"service.{name}: expected exactly {want}, "
                        f"got {got} (deterministic field -- dedupe, "
                        f"exactly-once accounting or the benchmark's "
                        f"work changed)")
            floor = tolerance * baseline["service"]["steps_per_sec"]
            if fresh["service"]["steps_per_sec"] < floor:
                problems.append(
                    f"throughput regression: service steps_per_sec "
                    f"{fresh['service']['steps_per_sec']:.0f} < "
                    f"{floor:.0f} ({tolerance:g} x baseline "
                    f"{baseline['service']['steps_per_sec']:.0f}) "
                    f"-- HTTP/WAL/poll overhead grew")
    return problems


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, default=FRESH_PATH,
                        help="fresh benchmark payload (default: %(default)s)")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH,
                        help="committed baseline (default: %(default)s)")
    parser.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("CAPMAN_BENCH_TOLERANCE",
                                     DEFAULT_TOLERANCE)),
        help="minimum fraction of baseline steps/sec to accept "
             "(default: %(default)s, env: CAPMAN_BENCH_TOLERANCE)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the gated subset of --fresh to "
                             "--baseline instead of comparing")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance <= 1.0:
        parser.error("--tolerance must lie in (0, 1]")

    if not args.fresh.exists():
        print(f"bench gate: no fresh payload at {args.fresh}; run\n"
              f"  python -m pytest benchmarks/test_sim_throughput.py "
              f"--benchmark-only -x -q -s", file=sys.stderr)
        return 2
    fresh = extract_gated(json.loads(args.fresh.read_text()))

    if args.write_baseline:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"bench gate: baseline written to {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"bench gate: no baseline at {args.baseline}; commit one "
              f"with --write-baseline", file=sys.stderr)
        return 2
    baseline = json.loads(args.baseline.read_text())

    problems = compare(fresh, baseline, args.tolerance)
    if problems:
        print("bench gate: FAIL", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    summary = []
    if "serial" in fresh:
        summary.append(
            f"serial steps_total={fresh['serial']['steps_total']} "
            f"steps_per_sec={fresh['steps_per_sec']:.0f}")
    for section in FLEET_SECTIONS:
        if section in fresh:
            summary.append(
                f"{section} batch={fresh[section]['batch']} "
                f"device_steps_per_sec="
                f"{fresh[section]['device_steps_per_sec']:.0f} "
                f"speedup={fresh[section]['speedup']:.1f}x")
    if "distributed" in fresh:
        summary.append(
            f"distributed cells={fresh['distributed']['cells_total']} "
            f"steps_per_sec={fresh['distributed']['steps_per_sec']:.0f} "
            f"lost={fresh['distributed']['lost_cells']} "
            f"double_commits={fresh['distributed']['double_commits']}")
    if "service" in fresh:
        summary.append(
            f"service cells={fresh['service']['cells_total']} "
            f"steps_per_sec={fresh['service']['steps_per_sec']:.0f} "
            f"deduped={fresh['service']['deduped_jobs']} "
            f"failed={fresh['service']['failed_cells']} "
            f"double_commits={fresh['service']['double_commits']}")
    print(f"bench gate: OK ({'; '.join(summary)}; "
          f"tolerance {args.tolerance:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
