#!/usr/bin/env python
"""Kill-9 resume smoke drill for the journalled sweep engine.

What it does, end to end:

1. runs a small reference sweep uninterrupted in this process;
2. launches the same sweep *journalled* in a subprocess and SIGKILLs
   it once roughly half the cells have committed -- the exact failure
   a preempted batch node delivers;
3. resumes from the write-ahead journal in this process and checks
   the two durability guarantees:

   * no committed cell is recomputed (``cells_resumed`` == commits in
     the journal at kill time), and
   * every per-cell result is byte-identical to the uninterrupted
     reference.

Exits 0 on success, 1 on any violated guarantee.  CI runs this as the
``resume-smoke`` job; it is also handy locally after touching the
durability layer::

    python scripts/resume_smoke.py
"""

import os
import pickle
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

_REPO = Path(__file__).resolve().parents[1]
if str(_REPO / "src") not in sys.path:
    sys.path.insert(0, str(_REPO / "src"))

from repro.capman.baselines import DualPolicy  # noqa: E402
from repro.durability.journal import RunJournal  # noqa: E402
from repro.sim.sweep import ScenarioRunner, SweepSpec  # noqa: E402
from repro.workload.generators import VideoWorkload  # noqa: E402
from repro.workload.traces import record_trace  # noqa: E402


@dataclass
class SlowDualPolicy(DualPolicy):
    """A DualPolicy that wastes wall time (only) before each cell.

    The delay guarantees the SIGKILL lands between commits rather than
    after the sweep already finished; the simulated physics -- and so
    the results -- are untouched.
    """

    delay_s: float = 0.4

    def build_pack(self):
        time.sleep(self.delay_s)
        return super().build_pack()


def build_spec() -> SweepSpec:
    trace = record_trace(VideoWorkload(seed=5), 120.0)
    policies = {
        f"Dual{mah}": SlowDualPolicy(capacity_mah=float(mah))
        for mah in (30, 40, 50, 60)
    }
    return SweepSpec(policies=policies, traces={"Video": trace},
                     max_duration_s=900.0)


def _commit_count(journal: Path) -> int:
    try:
        return journal.read_text(errors="replace").count('"type":"cell_commit"')
    except FileNotFoundError:
        return 0


def _cell_bytes(result):
    return [pickle.dumps(r) for r in result.results]


def child_main(journal_path: str) -> None:
    ScenarioRunner(workers=1, journal=journal_path,
                   checkpoint_every_steps=25).run(build_spec())


def main() -> int:
    total = len(build_spec())
    target_commits = max(1, total // 2)

    print(f"[resume-smoke] reference run ({total} cells)...")
    reference = ScenarioRunner(workers=1).run(build_spec())

    journal = Path(tempfile.mkdtemp(prefix="resume-smoke-")) / "sweep.journal"
    print(f"[resume-smoke] journalled child -> {journal}")
    child = subprocess.Popen([sys.executable, str(Path(__file__).resolve()),
                              "--child", str(journal)],
                             env=dict(os.environ))
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if _commit_count(journal) >= target_commits:
                break
            if child.poll() is not None:
                print("[resume-smoke] FAIL: child exited before the kill")
                return 1
            time.sleep(0.02)
    finally:
        child.kill()
        child.wait()

    committed = sum(1 for r in RunJournal.replay(journal)
                    if r["type"] == "cell_commit")
    print(f"[resume-smoke] killed -9 with {committed}/{total} cells committed")
    if not 1 <= committed < total:
        print("[resume-smoke] FAIL: kill did not land mid-sweep")
        return 1

    resumed = ScenarioRunner(workers=1, journal=journal).resume()
    ok = True
    if resumed.stats.cells_resumed != committed:
        print(f"[resume-smoke] FAIL: resumed {resumed.stats.cells_resumed} "
              f"cells from the journal, expected {committed}")
        ok = False
    if resumed.stats.cells_computed != total - committed:
        print(f"[resume-smoke] FAIL: recomputed "
              f"{resumed.stats.cells_computed} cells, expected "
              f"{total - committed}")
        ok = False
    if resumed.failures:
        print(f"[resume-smoke] FAIL: resume reported failures: "
              f"{resumed.failures}")
        ok = False
    if _cell_bytes(resumed) != _cell_bytes(reference):
        print("[resume-smoke] FAIL: resumed results are not byte-identical "
              "to the uninterrupted reference")
        ok = False
    if ok:
        print(f"[resume-smoke] OK: {committed} cells replayed from the "
              f"journal, {total - committed} computed, all "
              f"{total} byte-identical to the uninterrupted run")
    return 0 if ok else 1


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--child":
        child_main(sys.argv[2])
    else:
        sys.exit(main())
